package dist

import "nnwc/internal/obs/metrics"

// Dist counters live on the shared obs registry so `-pprof-addr`'s
// /metrics endpoint (and anything else scraping metrics.Default())
// exposes them alongside the sched/train/serve series.
var (
	leasesTotal = metrics.Default().Counter("nnwc_dist_leases_total",
		"work leases granted by the coordinator")
	reassignedTotal = metrics.Default().Counter("nnwc_dist_reassigned_tasks_total",
		"tasks reclaimed from expired leases and requeued")
	duplicatesTotal = metrics.Default().Counter("nnwc_dist_duplicate_results_total",
		"duplicate result deliveries dropped by the idempotent index-addressed store")
	resumedTotal = metrics.Default().Counter("nnwc_dist_resumed_tasks_total",
		"tasks skipped at coordinator startup because the state journal already held their results")
	resultsTotal = metrics.Default().CounterVec("nnwc_dist_results_total",
		"results accepted by the coordinator, by reporting worker", "worker")
	taskMillis = metrics.Default().SummaryVec("nnwc_dist_task_ms",
		"worker-reported per-task wall time in milliseconds", 512, []string{"worker"}, 0.5, 0.99)
	workerTasksTotal = metrics.Default().Counter("nnwc_dist_worker_tasks_total",
		"tasks executed by this process's dist workers")
)
