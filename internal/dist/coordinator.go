package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"nnwc/internal/httpx"
	"nnwc/internal/obs"
	"nnwc/internal/obs/metrics"
	"nnwc/internal/sched"
)

// CoordinatorConfig parameterizes a Coordinator. Zero values get defaults.
type CoordinatorConfig struct {
	// Addr is the listen address (use "127.0.0.1:0" in tests).
	Addr string
	// Spec is the job to distribute.
	Spec Spec
	// ArtifactPaths maps each Spec.Artifacts hash to the local file the
	// coordinator serves for it.
	ArtifactPaths map[string]string
	// LeaseSize is the number of task indexes per lease (default: an
	// auto size targeting ~16 leases, minimum 1 — small jobs stay
	// fine-grained for reassignment, large grids amortize round trips).
	LeaseSize int
	// LeaseTTL is how long a worker may sit on a lease without delivering
	// its results before the tasks are reassigned (default 60s).
	LeaseTTL time.Duration
	// PollInterval is the retry hint handed to workers when every pending
	// task is leased out (default 250ms).
	PollInterval time.Duration
	// LingerAfterDone keeps the listener answering Done after the last
	// result, so other workers observe completion and exit cleanly
	// instead of erroring on a vanished coordinator (default 2s).
	LingerAfterDone time.Duration
	// StateFile, when set, journals completed tasks so a restarted
	// coordinator with the same spec skips them. "" disables resume.
	StateFile string
	// ClusterTraceFile, when set, is where the coordinator writes the
	// merged cluster trace once the job completes: worker-shipped
	// per-task event blocks in index order, framed by a deterministic
	// header/footer and interleaved with the (volatile) lease/reassign
	// ops narrative. "" disables trace merging.
	ClusterTraceFile string
	// Timeouts harden the HTTP listener (zero: httpx defaults).
	Timeouts httpx.Timeouts
	// Logf, when set, receives progress lines (use obs-aware printers in
	// cmd; nil is silent).
	Logf func(format string, args ...any)
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.Addr == "" {
		c.Addr = ":9000"
	}
	if c.LeaseSize <= 0 {
		c.LeaseSize = (c.Spec.NumTasks + 15) / 16
		if c.LeaseSize < 1 {
			c.LeaseSize = 1
		}
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 60 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 250 * time.Millisecond
	}
	if c.LingerAfterDone <= 0 {
		c.LingerAfterDone = 2 * time.Second
	}
	return c
}

// Stats counts one coordinator's protocol events (the package-level
// metrics aggregate across coordinators; tests want per-job numbers).
type Stats struct {
	Leases     uint64 // leases granted
	Reassigned uint64 // tasks reclaimed from expired leases
	Duplicates uint64 // duplicate result deliveries dropped
	Resumed    uint64 // tasks preloaded from the state journal
}

type lease struct {
	id       uint64
	worker   string
	deadline time.Time
	pending  map[int]struct{}
}

// Coordinator owns a job: it leases index ranges to workers, serves the
// content-addressed artifacts they need, collects index-addressed results
// idempotently, reclaims leases from dead workers, and journals progress.
type Coordinator struct {
	cfg         CoordinatorConfig
	fingerprint string

	ln       net.Listener
	http     *http.Server
	serveErr chan error

	mu        sync.Mutex
	pending   [][2]int // FIFO of [lo, hi) index ranges not currently leased
	leases    map[uint64]*lease
	nextLease uint64
	results   []json.RawMessage
	taskErrs  []string
	resolved  []bool
	remaining int
	failed    int
	stats     Stats
	journal   *stateWriter
	rec       *clusterRecorder
	started   time.Time
	done      chan struct{}
}

// NewCoordinator validates the spec, loads the state journal (if any),
// and prepares the lease queue over the still-missing indexes.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	for role, sha := range cfg.Spec.Artifacts {
		if _, ok := cfg.ArtifactPaths[sha]; !ok {
			return nil, fmt.Errorf("dist: artifact %q (%s) has no local path", role, sha)
		}
	}
	cfg = cfg.withDefaults()
	n := cfg.Spec.NumTasks
	c := &Coordinator{
		cfg:         cfg,
		fingerprint: cfg.Spec.Fingerprint(),
		serveErr:    make(chan error, 1),
		leases:      make(map[uint64]*lease),
		results:     make([]json.RawMessage, n),
		taskErrs:    make([]string, n),
		resolved:    make([]bool, n),
		remaining:   n,
		started:     time.Now(),
		done:        make(chan struct{}),
	}
	if cfg.ClusterTraceFile != "" {
		c.rec = newClusterRecorder(n)
	}
	if cfg.StateFile != "" {
		entries, err := readState(cfg.StateFile, c.fingerprint)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.Index < 0 || e.Index >= n || c.resolved[e.Index] {
				continue
			}
			c.resolved[e.Index] = true
			c.results[e.Index] = e.Payload
			c.taskErrs[e.Index] = e.Error
			if c.rec != nil {
				// Journaled events survive a coordinator restart, so a
				// resumed run still merges a complete cluster trace.
				c.rec.taskResolved(e.Index, e.Events)
			}
			if e.Error != "" {
				c.failed++
			}
			c.remaining--
			c.stats.Resumed++
		}
		resumedTotal.Add(c.stats.Resumed)
		hdr := stateHeader{JobID: cfg.Spec.JobID, Kind: cfg.Spec.Kind, NumTasks: n, Fingerprint: c.fingerprint}
		c.journal, err = openStateWriter(cfg.StateFile, hdr, len(entries) == 0)
		if err != nil {
			return nil, err
		}
		if c.stats.Resumed > 0 {
			c.logf("dist: resuming %s: %d/%d tasks already journaled in %s", cfg.Spec.Kind, c.stats.Resumed, n, cfg.StateFile)
		}
	}
	c.pending = c.missingRanges()
	if c.remaining == 0 {
		close(c.done)
	}
	return c, nil
}

// missingRanges compresses the unresolved indexes into lease-sized ranges.
// Must hold mu (or be pre-Start).
func (c *Coordinator) missingRanges() [][2]int {
	var ranges [][2]int
	n := c.cfg.Spec.NumTasks
	for lo := 0; lo < n; {
		if c.resolved[lo] {
			lo++
			continue
		}
		hi := lo
		for hi < n && !c.resolved[hi] && hi-lo < c.cfg.LeaseSize {
			hi++
		}
		ranges = append(ranges, [2]int{lo, hi})
		lo = hi
	}
	if len(ranges) == 0 && c.remaining == n {
		return sched.Shard(n, c.cfg.LeaseSize)
	}
	return ranges
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Handler returns the coordinator's HTTP API (mountable in tests),
// wrapped in the shared httpx instrumentation: per-route request metrics
// and trace-header extraction, the same middleware the serve plane
// mounts.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /dist/job", c.handleJob)
	mux.HandleFunc("POST /dist/lease", c.handleLease)
	mux.HandleFunc("POST /dist/result", c.handleResult)
	mux.HandleFunc("GET /dist/artifact/{sha}", c.handleArtifact)
	mux.HandleFunc("GET /dist/progress", c.handleProgress)
	mux.HandleFunc("GET /metrics", handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	var tr *obs.Trace
	if c.rec != nil {
		tr = c.rec.tr
	}
	return httpx.Instrument(httpx.InstrumentOptions{Service: "dist", Route: distRoute, Trace: tr}, mux)
}

// distRoute collapses the content-addressed artifact path so the route
// label space stays bounded (one label, not one per SHA-256).
func distRoute(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/dist/artifact/") {
		path = "/dist/artifact/{sha}"
	}
	return r.Method + " " + path
}

// handleMetrics exposes the process-wide registry — including the
// federated per-worker and merged cluster histograms — on the
// coordinator itself, so scraping the cluster needs one target.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.Default().Write(w)
}

// Start binds the listener and serves the protocol until Wait completes
// the job (or the context given to Wait is canceled).
func (c *Coordinator) Start() error {
	ln, err := net.Listen("tcp", c.cfg.Addr)
	if err != nil {
		return err
	}
	c.ln = ln
	c.http = httpx.NewServer(c.Handler(), c.cfg.Timeouts)
	// Capture the server: close() nils c.http, and a Wait on an
	// already-canceled context can run it before this goroutine is
	// scheduled.
	srv := c.http
	go func() { c.serveErr <- srv.Serve(ln) }()
	c.logf("dist: coordinating %q (%d tasks, lease size %d) on %s", c.cfg.Spec.Kind, c.cfg.Spec.NumTasks, c.cfg.LeaseSize, c.Addr())
	return nil
}

// Addr reports the bound listen address.
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return c.cfg.Addr
	}
	return c.ln.Addr().String()
}

// Progress reports completed/failed/total task counts plus the live
// worker count and elapsed wall time `nnwc runs tail` renders.
func (c *Coordinator) Progress() Progress {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.cfg.Spec.NumTasks
	workers := make(map[string]struct{}, len(c.leases))
	for _, l := range c.leases {
		if !now.After(l.deadline) {
			workers[l.worker] = struct{}{}
		}
	}
	return Progress{
		Completed:  n - c.remaining - c.failed,
		Failed:     c.failed,
		Total:      n,
		Workers:    len(workers),
		ElapsedSec: now.Sub(c.started).Seconds(),
	}
}

// CoordStats snapshots the per-job protocol counters.
func (c *Coordinator) CoordStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Wait blocks until every task has a result (or ctx is canceled), lingers
// briefly so polling workers observe Done, then stops the listener and
// returns the payloads in index order. If any task failed, the error of
// the lowest-index failing task is returned — the same
// first-error-in-index-order semantics sched.ForEach has.
func (c *Coordinator) Wait(ctx context.Context) ([]json.RawMessage, error) {
	defer c.close()
	select {
	case <-c.done:
	case err := <-c.serveErr:
		if err != nil {
			return nil, fmt.Errorf("dist: coordinator listener: %w", err)
		}
		return nil, fmt.Errorf("dist: coordinator listener closed before the job finished")
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if c.http != nil {
		// Let pollers see Done before the listener goes away.
		timer := time.NewTimer(c.cfg.LingerAfterDone)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, e := range c.taskErrs {
		if e != "" {
			return nil, fmt.Errorf("dist: task %d: %s", i, e)
		}
	}
	out := make([]json.RawMessage, len(c.results))
	copy(out, c.results)
	return out, nil
}

// Run is Start + Wait.
func (c *Coordinator) Run(ctx context.Context) ([]json.RawMessage, error) {
	if err := c.Start(); err != nil {
		return nil, err
	}
	return c.Wait(ctx)
}

func (c *Coordinator) close() {
	if c.http != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		c.http.Shutdown(sctx)
		cancel()
		c.http = nil
	}
	// Detach the journal and recorder under the lock, then do the file
	// I/O after releasing it: close() must not hold mu across disk
	// writes while Progress or a straggling handler contends for it.
	c.mu.Lock()
	journal := c.journal
	c.journal = nil
	// Merge the cluster trace once, after Shutdown has drained the
	// handlers (no sink can still be appending to the ops narrative) and
	// only for a completed job — a canceled run has no coherent trace.
	var rec *clusterRecorder
	if c.rec != nil && c.remaining == 0 {
		rec = c.rec
		c.rec = nil
	}
	failed := c.failed
	c.mu.Unlock()
	if journal != nil {
		if err := journal.close(); err != nil {
			c.logf("dist: closing state journal failed: %v", err)
		}
	}
	if rec != nil {
		if err := rec.write(c.cfg.ClusterTraceFile, c.cfg.Spec, c.fingerprint, failed); err != nil {
			c.logf("dist: writing cluster trace %s failed: %v", c.cfg.ClusterTraceFile, err)
		} else {
			c.logf("dist: merged cluster trace in %s", c.cfg.ClusterTraceFile)
		}
	}
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.cfg.Spec)
}

// reclaimLocked requeues the unresolved indexes of expired leases. Must
// hold mu. Indexes are gathered across all expired leases and re-sharded
// in sorted order so requeue order never depends on map iteration.
func (c *Coordinator) reclaimLocked(now time.Time) {
	var expired []uint64
	var idxs []int
	for id, l := range c.leases {
		if now.After(l.deadline) {
			expired = append(expired, id)
			for idx := range l.pending {
				if !c.resolved[idx] {
					idxs = append(idxs, idx)
				}
			}
		}
	}
	if len(expired) == 0 {
		return
	}
	for _, id := range expired {
		delete(c.leases, id)
	}
	if len(idxs) == 0 {
		return
	}
	sort.Ints(idxs)
	for lo := 0; lo < len(idxs); {
		hi := lo + 1
		for hi < len(idxs) && idxs[hi] == idxs[hi-1]+1 && hi-lo < c.cfg.LeaseSize {
			hi++
		}
		c.pending = append(c.pending, [2]int{idxs[lo], idxs[hi-1] + 1})
		lo = hi
	}
	c.stats.Reassigned += uint64(len(idxs))
	reassignedTotal.Add(uint64(len(idxs)))
	if c.rec != nil {
		c.rec.reassigned(len(idxs), len(expired))
	}
	c.logf("dist: reassigned %d task(s) from %d expired lease(s)", len(idxs), len(expired))
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	// Every lease request doubles as a metrics push: absorb the worker's
	// cumulative snapshots into the federated series before touching the
	// lease table (the vec has its own lock; no need for c.mu).
	absorbWorkerMetrics(req.Worker, req.Metrics)
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reclaimLocked(now)
	if c.remaining == 0 {
		writeJSON(w, http.StatusOK, leaseReply{Done: true})
		return
	}
	if len(c.pending) == 0 {
		writeJSON(w, http.StatusOK, leaseReply{RetryMS: int(c.cfg.PollInterval / time.Millisecond)})
		return
	}
	rng := c.pending[0]
	c.pending = c.pending[1:]
	c.nextLease++
	l := &lease{
		id:       c.nextLease,
		worker:   req.Worker,
		deadline: now.Add(c.cfg.LeaseTTL),
		pending:  make(map[int]struct{}, rng[1]-rng[0]),
	}
	for idx := rng[0]; idx < rng[1]; idx++ {
		l.pending[idx] = struct{}{}
	}
	c.leases[l.id] = l
	c.stats.Leases++
	leasesTotal.Inc()
	if c.rec != nil {
		c.rec.leaseGranted(req.Worker, rng[0], rng[1], l.id)
	}
	writeJSON(w, http.StatusOK, leaseReply{LeaseID: l.id, Lo: rng[0], Hi: rng[1]})
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Index < 0 || req.Index >= c.cfg.Spec.NumTasks {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("index %d out of range [0,%d)", req.Index, c.cfg.Spec.NumTasks)})
		return
	}
	if len(req.Payload) == 0 && req.Error == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "result carries neither payload nor error"})
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.resolved[req.Index] {
		// Idempotent index-addressed store: the first delivery won. The
		// payloads are deterministic, so the loser carried the same bits.
		c.stats.Duplicates++
		duplicatesTotal.Inc()
		writeJSON(w, http.StatusOK, resultReply{Done: c.remaining == 0, Duplicate: true})
		return
	}
	c.resolved[req.Index] = true
	c.results[req.Index] = req.Payload
	c.taskErrs[req.Index] = req.Error
	if c.rec != nil {
		c.rec.taskResolved(req.Index, req.Events)
	}
	if req.Error != "" {
		c.failed++
	}
	c.remaining--
	// Drop the index from every lease covering it (its own, plus any
	// reassignment replicas) so later expiries cannot requeue it.
	for _, l := range c.leases {
		delete(l.pending, req.Index)
	}
	if c.journal != nil {
		entry := stateEntry{Index: req.Index, Payload: req.Payload, Error: req.Error}
		if c.rec != nil {
			// Events only matter to a journal when a trace is being
			// merged; keep resume files lean otherwise.
			entry.Events = req.Events
		}
		// The append must stay ordered with the state transition it
		// records: releasing mu first would let two handlers interleave
		// journal lines out of commit order, breaking crash-resume
		// replay. The write is one small line to a local O_APPEND file.
		//lint:waive lockhold -- journal appends must stay ordered with the state transition they record; an unlocked append could interleave entries across handlers and corrupt resume
		if err := c.journal.append(entry); err != nil {
			// Journaling is best-effort resume support; the in-memory run
			// still completes. Stop journaling rather than failing tasks.
			c.logf("dist: state journal write failed (%v); resume disabled for this run", err)
			//lint:waive lockhold -- closing the failed journal is part of the same ordered transition; the handle is local disk, not network
			c.journal.close()
			c.journal = nil
		}
	}
	resultsTotal.Inc(req.Worker)
	taskMillis.Observe(req.ElapsedMS, req.Worker)
	if c.remaining == 0 {
		close(c.done)
		c.logf("dist: job %q complete (%d tasks)", c.cfg.Spec.Kind, c.cfg.Spec.NumTasks)
	}
	writeJSON(w, http.StatusOK, resultReply{Done: c.remaining == 0})
}

func (c *Coordinator) handleArtifact(w http.ResponseWriter, r *http.Request) {
	sha := r.PathValue("sha")
	path, ok := c.cfg.ArtifactPaths[sha]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown artifact " + sha})
		return
	}
	http.ServeFile(w, r, path)
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Progress())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before touching the ResponseWriter: once WriteHeader runs
	// the status is committed, and a mid-body Encode failure would leave
	// the worker a truncated reply under a 200.
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// A short write means the peer hung up; it sees its own error.
	_, _ = w.Write(append(body, '\n'))
}
