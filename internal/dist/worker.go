package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"nnwc/internal/httpx"
	"nnwc/internal/obs"
	"nnwc/internal/obs/metrics"
	"nnwc/internal/sched"
)

// Runner computes one task of a job kind: given the spec and an absolute
// task index, return the result payload bytes (NaN-safe JSON — use
// Float/Floats for any floating-point field). A Runner error is treated
// as deterministic (the task would fail identically anywhere) and is
// reported to the coordinator, not retried.
type Runner func(ctx context.Context, env Env, spec Spec, index int) (json.RawMessage, error)

// Env is what a Runner may ask of its worker: content-addressed artifact
// resolution. Paths are local files whose bytes verified against the hash.
type Env interface {
	ArtifactPath(ctx context.Context, sha string) (string, error)
}

// WorkerConfig parameterizes a Worker. Zero values get defaults.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:9000"; a
	// bare host:port is accepted).
	Coordinator string
	// ID names this worker in coordinator metrics (default host-pid).
	ID string
	// CacheDir holds fetched artifacts, keyed by hash (default: a fresh
	// temp dir). Safe to share across runs — content addressing makes
	// cached files immutable.
	CacheDir string
	// Runners maps Spec.Kind to its task implementation (usually
	// jobs.Runners()).
	Runners map[string]Runner
	// Parallelism bounds concurrent task execution inside one lease
	// (default 1; results stay bit-identical at any value because each
	// task is index-seeded).
	Parallelism int
	// BackoffMin/BackoffMax bound the exponential retry backoff for
	// coordinator requests (defaults 100ms / 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// WaitForJob bounds how long the worker retries the initial job fetch
	// — the window in which it may be started before its coordinator
	// (default 2m).
	WaitForJob time.Duration
	// GiveUp bounds consecutive lease/result retrying once the job has
	// been seen; past it the coordinator is presumed gone for good
	// (default 30s).
	GiveUp time.Duration
	// HTTPTimeout bounds one request/response round trip (default 60s,
	// generous for artifact downloads).
	HTTPTimeout time.Duration
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() (WorkerConfig, error) {
	if c.Coordinator == "" {
		return c, fmt.Errorf("dist: worker needs a coordinator URL")
	}
	c.Coordinator = NormalizeURL(c.Coordinator)
	if c.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		c.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.WaitForJob <= 0 {
		c.WaitForJob = 2 * time.Minute
	}
	if c.GiveUp <= 0 {
		c.GiveUp = 30 * time.Second
	}
	if c.HTTPTimeout <= 0 {
		c.HTTPTimeout = 60 * time.Second
	}
	return c, nil
}

// NormalizeURL adds the http scheme to a bare host:port and trims any
// trailing slash, so "-worker localhost:9000" just works.
func NormalizeURL(s string) string {
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// Worker pulls leases from a coordinator and executes them. One Worker
// runs one job to completion; create with NewWorker, drive with Run.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	// jobID is set once (before the lease loop) from the fetched spec and
	// stamped on every request as the X-NNWC-Run trace header.
	jobID string

	// Per-worker wall-time histograms, pushed to the coordinator as
	// cumulative snapshots on every lease request. Unregistered instances
	// (metrics.NewHistogram, not the default registry) so many workers in
	// one process — tests, benchmarks — never share counters.
	taskHist *metrics.Histogram
	artHist  *metrics.Histogram

	artMu    sync.Mutex
	artPaths map[string]string
}

// NewWorker validates the config and prepares the artifact cache.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.CacheDir == "" {
		dir, err := os.MkdirTemp("", "nnwc-dist-cache-")
		if err != nil {
			return nil, err
		}
		cfg.CacheDir = dir
	} else if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return nil, err
	}
	return &Worker{
		cfg:      cfg,
		client:   &http.Client{Timeout: cfg.HTTPTimeout},
		taskHist: metrics.NewHistogram(MetricTaskMS, "task wall time (ms)", metrics.DefMillisBuckets),
		artHist:  metrics.NewHistogram(MetricArtifactMS, "artifact fetch wall time (ms)", metrics.DefMillisBuckets),
		artPaths: make(map[string]string),
	}, nil
}

// metricSnapshots gathers the worker's cumulative histogram snapshots for
// a lease-request push. Empty series are omitted.
func (w *Worker) metricSnapshots() map[string]metrics.HistogramSnapshot {
	snaps := make(map[string]metrics.HistogramSnapshot, 2)
	if s := w.taskHist.Snapshot(); s.Count > 0 {
		snaps[MetricTaskMS] = s
	}
	if s := w.artHist.Snapshot(); s.Count > 0 {
		snaps[MetricArtifactMS] = s
	}
	if len(snaps) == 0 {
		return nil
	}
	return snaps
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// permanentError marks a coordinator response that retrying cannot fix
// (4xx — a protocol or spec problem, not an outage).
type permanentError struct{ err error }

func (e permanentError) Error() string { return e.err.Error() }
func (e permanentError) Unwrap() error { return e.err }

// retry runs fn with exponential backoff until it succeeds, returns a
// permanentError, ctx ends, or `budget` of consecutive failure has
// elapsed.
func (w *Worker) retry(ctx context.Context, budget time.Duration, fn func() error) error {
	deadline := time.Now().Add(budget)
	backoff := w.cfg.BackoffMin
	for {
		err := fn()
		if err == nil {
			return nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("dist: giving up after %s: %w", budget, err)
		}
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
		backoff *= 2
		if backoff > w.cfg.BackoffMax {
			backoff = w.cfg.BackoffMax
		}
	}
}

// Start runs the worker on its own goroutine, for callers that drive a
// coordinator and its workers inside one process (benchmarks, tests).
// The returned channel receives Run's result exactly once. The
// coordinator's Wait remains the authoritative job outcome; a worker
// error here is only diagnostic.
func (w *Worker) Start(ctx context.Context) <-chan error {
	ch := make(chan error, 1)
	go func() { ch <- w.Run(ctx) }()
	return ch
}

// Run executes the coordinator's job until Done: fetch the spec, then
// loop lease → compute → stream results. Returns nil once the
// coordinator reports every task complete.
func (w *Worker) Run(ctx context.Context) error {
	var spec Spec
	err := w.retry(ctx, w.cfg.WaitForJob, func() error {
		return w.getJSON(ctx, "/dist/job", &spec)
	})
	if err != nil {
		return fmt.Errorf("dist: worker %s: fetching job from %s: %w", w.cfg.ID, w.cfg.Coordinator, err)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	runner, ok := w.cfg.Runners[spec.Kind]
	if !ok {
		return fmt.Errorf("dist: worker %s has no runner for job kind %q", w.cfg.ID, spec.Kind)
	}
	w.jobID = spec.JobID // stamped as X-NNWC-Run on every request from here on
	w.logf("dist: worker %s: job %q, %d tasks, coordinator %s", w.cfg.ID, spec.Kind, spec.NumTasks, w.cfg.Coordinator)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var rep leaseReply
		err := w.retry(ctx, w.cfg.GiveUp, func() error {
			return w.postJSON(ctx, "/dist/lease", leaseRequest{Worker: w.cfg.ID, Metrics: w.metricSnapshots()}, &rep)
		})
		if err != nil {
			return fmt.Errorf("dist: worker %s: leasing: %w", w.cfg.ID, err)
		}
		switch {
		case rep.Done:
			w.logf("dist: worker %s: job complete", w.cfg.ID)
			return nil
		case rep.LeaseID == 0:
			wait := time.Duration(rep.RetryMS) * time.Millisecond
			if wait <= 0 {
				wait = 250 * time.Millisecond
			}
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
		default:
			if err := w.runLease(ctx, runner, spec, rep); err != nil {
				return err
			}
		}
	}
}

// runLease computes every index in [rep.Lo, rep.Hi) and streams each
// result back as it lands. Tasks inside the lease may run concurrently
// (Parallelism); payloads are index-seeded so the results are identical
// either way.
func (w *Worker) runLease(ctx context.Context, runner Runner, spec Spec, rep leaseReply) error {
	n := rep.Hi - rep.Lo
	return sched.ForEachWorker(sched.Workers(w.cfg.Parallelism), n, func(i, _ int) error {
		idx := rep.Lo + i
		// Each task gets its own buffered trace: the runner emits its
		// deterministic events through the context, the worker closes the
		// block with a dist_task span, and the whole buffer ships with the
		// result for the coordinator to merge in index order.
		var events bytes.Buffer
		tr := obs.NewTrace(obs.NewWriterSink(&events))
		start := time.Now()
		payload, err := runner(obs.ContextWithTrace(ctx, tr), w, spec, idx)
		elapsed := time.Since(start)
		ms := float64(elapsed) / float64(time.Millisecond)
		tr.Emit("dist_task",
			obs.String("kind", spec.Kind),
			obs.Int("index", idx),
			obs.String("worker", w.cfg.ID),
			obs.Int("lease", int(rep.LeaseID)),
			obs.Float("ms", ms))
		w.taskHist.Observe(ms)
		workerTasksTotal.Inc()
		res := resultRequest{
			LeaseID:   rep.LeaseID,
			Worker:    w.cfg.ID,
			Index:     idx,
			ElapsedMS: ms,
			Events:    events.String(),
		}
		if err != nil {
			// Deterministic task failure: report it, don't retry it.
			res.Error = err.Error()
		} else {
			res.Payload = payload
		}
		var rr resultReply
		if err := w.retry(ctx, w.cfg.GiveUp, func() error {
			return w.postJSON(ctx, "/dist/result", res, &rr)
		}); err != nil {
			return fmt.Errorf("dist: worker %s: delivering task %d: %w", w.cfg.ID, idx, err)
		}
		return nil
	})
}

// ArtifactPath implements Env: fetch-once, hash-verify, cache on disk.
// artMu guards only the in-memory path map; the disk probe and the
// network fetch run unlocked so one stalled download cannot serialize
// every other task's artifact resolution. Two goroutines racing on the
// same sha may both fetch, but the temp+rename publish is atomic and
// idempotent, so the loser merely wastes a download.
func (w *Worker) ArtifactPath(ctx context.Context, sha string) (string, error) {
	w.artMu.Lock()
	if path, ok := w.artPaths[sha]; ok {
		w.artMu.Unlock()
		return path, nil
	}
	w.artMu.Unlock()
	path := filepath.Join(w.cfg.CacheDir, sha)
	if body, err := os.ReadFile(path); err == nil && obs.HashBytes(body) == sha {
		w.artMu.Lock()
		w.artPaths[sha] = path // warm cache from an earlier run
		w.artMu.Unlock()
		return path, nil
	}
	var body []byte
	fetchStart := time.Now()
	err := w.retry(ctx, w.cfg.GiveUp, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+"/dist/artifact/"+sha, nil)
		if err != nil {
			return permanentError{err}
		}
		w.stampHeaders(req)
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			err := fmt.Errorf("artifact %s: %s: %s", sha, resp.Status, strings.TrimSpace(string(b)))
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				return permanentError{err}
			}
			return err
		}
		body = b
		return nil
	})
	if err != nil {
		return "", err
	}
	w.artHist.Observe(float64(time.Since(fetchStart)) / float64(time.Millisecond))
	if got := obs.HashBytes(body); got != sha {
		return "", fmt.Errorf("dist: artifact %s failed content verification (got %s)", sha, got)
	}
	tmp, err := os.CreateTemp(w.cfg.CacheDir, ".fetch-*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(body); err != nil {
		_ = tmp.Close() // the write error is the one worth returning
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	w.artMu.Lock()
	w.artPaths[sha] = path
	w.artMu.Unlock()
	return path, nil
}

func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+path, nil)
	if err != nil {
		return permanentError{err}
	}
	return w.do(req, out)
}

func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return permanentError{err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return permanentError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

// stampHeaders adds the trace-propagation headers, so the coordinator's
// server-side spans attribute the request to this worker and run.
func (w *Worker) stampHeaders(req *http.Request) {
	req.Header.Set(httpx.HeaderWorker, w.cfg.ID)
	if w.jobID != "" {
		req.Header.Set(httpx.HeaderRun, w.jobID)
	}
}

func (w *Worker) do(req *http.Request, out any) error {
	w.stampHeaders(req)
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		err := fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(body)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return permanentError{err}
		}
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("%s %s: decoding reply: %w", req.Method, req.URL.Path, err)
	}
	return nil
}
