package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nnwc/internal/obs"
)

// toySpec is a minimal job: NumTasks indexes, no artifacts; the toy runner
// returns a payload derived purely from the index.
func toySpec(n int) Spec {
	return Spec{JobID: "test-run", Kind: "toy", Seed: 11, NumTasks: n}
}

func toyRunner(ctx context.Context, env Env, spec Spec, index int) (json.RawMessage, error) {
	return json.Marshal(map[string]Floats{"v": {float64(index) * 1.5, float64(spec.Seed)}})
}

func newTestCoordinator(t *testing.T, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.LingerAfterDone == 0 {
		cfg.LingerAfterDone = time.Millisecond
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

func newTestWorker(t *testing.T, coordinator string, runners map[string]Runner) *Worker {
	t.Helper()
	w, err := NewWorker(WorkerConfig{
		Coordinator: coordinator,
		ID:          "test-worker",
		CacheDir:    t.TempDir(),
		Runners:     runners,
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		WaitForJob:  10 * time.Second,
		GiveUp:      10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSpecFingerprintIgnoresJobID(t *testing.T) {
	a := toySpec(4)
	b := toySpec(4)
	b.JobID = "a-different-run"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint should not depend on JobID")
	}
	c := toySpec(4)
	c.Seed++
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("fingerprint must depend on the seed")
	}
	d := toySpec(5)
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("fingerprint must depend on the task count")
	}
}

func TestFloatWireRoundTrip(t *testing.T) {
	in := Floats{0.1 + 0.2, math.NaN(), math.Inf(1), math.Inf(-1), -0.0, 1e-308, seedLike()}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Floats
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("length %d != %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
			t.Fatalf("element %d: %x != %x", i, math.Float64bits(in[i]), math.Float64bits(out[i]))
		}
	}
}

// seedLike is an awkward value with a long shortest-form decimal.
func seedLike() float64 { return 0.0027368722195466755 }

func TestCoordinatorTwoWorkersCompleteInOrder(t *testing.T) {
	const n = 13
	// A real linger window: this test asserts both workers exit cleanly,
	// which requires the listener to stay up until they observe Done.
	c := newTestCoordinator(t, CoordinatorConfig{Spec: toySpec(n), LeaseSize: 2, PollInterval: 5 * time.Millisecond, LingerAfterDone: 3 * time.Second})
	runners := map[string]Runner{"toy": toyRunner}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := newTestWorker(t, c.Addr(), runners)
			errs[i] = w.Run(context.Background())
		}(i)
	}
	payloads, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, werr := range errs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}
	if len(payloads) != n {
		t.Fatalf("got %d payloads, want %d", len(payloads), n)
	}
	for i, p := range payloads {
		want, _ := toyRunner(context.Background(), nil, toySpec(n), i)
		if string(p) != string(want) {
			t.Fatalf("payload %d = %s, want %s", i, p, want)
		}
	}
	if st := c.CoordStats(); st.Leases == 0 {
		t.Fatal("no leases recorded")
	}
}

func TestTaskErrorReportsLowestIndex(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{Spec: toySpec(6), LeaseSize: 2})
	runner := func(ctx context.Context, env Env, spec Spec, index int) (json.RawMessage, error) {
		if index == 2 || index == 4 {
			return nil, fmt.Errorf("task %d is deterministically broken", index)
		}
		return toyRunner(ctx, env, spec, index)
	}
	w := newTestWorker(t, c.Addr(), map[string]Runner{"toy": runner})
	go w.Run(context.Background())
	_, err := c.Wait(context.Background())
	if err == nil || !strings.Contains(err.Error(), "dist: task 2:") {
		t.Fatalf("want lowest-index task error, got %v", err)
	}
}

func TestDuplicateResultDeliveryIsIdempotent(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{Spec: toySpec(2), LeaseSize: 2})
	defer c.Wait(context.Background())
	base := "http://" + c.Addr()
	client := &http.Client{Timeout: 5 * time.Second}

	var lr leaseReply
	postJSONT(t, client, base+"/dist/lease", leaseRequest{Worker: "w1"}, &lr)
	if lr.LeaseID == 0 || lr.Lo != 0 || lr.Hi != 2 {
		t.Fatalf("unexpected lease %+v", lr)
	}
	payload, _ := toyRunner(context.Background(), nil, toySpec(2), 0)
	req := resultRequest{LeaseID: lr.LeaseID, Worker: "w1", Index: 0, Payload: payload}
	var first, second resultReply
	postJSONT(t, client, base+"/dist/result", req, &first)
	postJSONT(t, client, base+"/dist/result", req, &second)
	if first.Duplicate {
		t.Fatal("first delivery flagged duplicate")
	}
	if !second.Duplicate {
		t.Fatal("second delivery not flagged duplicate")
	}
	if st := c.CoordStats(); st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
	// Finish the job so Wait in the deferred call returns.
	payload1, _ := toyRunner(context.Background(), nil, toySpec(2), 1)
	var rr resultReply
	postJSONT(t, client, base+"/dist/result", resultRequest{LeaseID: lr.LeaseID, Worker: "w1", Index: 1, Payload: payload1}, &rr)
	if !rr.Done {
		t.Fatal("final result did not report done")
	}
}

func TestExpiredLeaseIsReassigned(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorConfig{
		Spec:      toySpec(3),
		LeaseSize: 3,
		LeaseTTL:  50 * time.Millisecond,
	})
	base := "http://" + c.Addr()
	client := &http.Client{Timeout: 5 * time.Second}

	// A worker takes the whole job and dies silently.
	var dead leaseReply
	postJSONT(t, client, base+"/dist/lease", leaseRequest{Worker: "doomed"}, &dead)
	if dead.LeaseID == 0 {
		t.Fatal("no lease granted")
	}
	time.Sleep(80 * time.Millisecond)

	// The next lease request reclaims and re-grants the same indexes.
	var next leaseReply
	postJSONT(t, client, base+"/dist/lease", leaseRequest{Worker: "healthy"}, &next)
	if next.LeaseID == 0 || next.Lo != 0 || next.Hi != 3 {
		t.Fatalf("reclaimed lease = %+v, want [0,3)", next)
	}
	if st := c.CoordStats(); st.Reassigned != 3 {
		t.Fatalf("Reassigned = %d, want 3", st.Reassigned)
	}

	// Late delivery from the dead lease still lands (first write wins).
	for i := 0; i < 3; i++ {
		payload, _ := toyRunner(context.Background(), nil, toySpec(3), i)
		var rr resultReply
		postJSONT(t, client, base+"/dist/result", resultRequest{LeaseID: dead.LeaseID, Worker: "doomed", Index: i, Payload: payload}, &rr)
	}
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerRetriesTransientErrors fronts the coordinator with a proxy
// that fails every other request; the worker's backoff must ride through.
func TestWorkerRetriesTransientErrors(t *testing.T) {
	// Linger long enough after completion for the worker to observe the
	// Done reply through its retry/backoff loop.
	c := newTestCoordinator(t, CoordinatorConfig{Spec: toySpec(4), LeaseSize: 1, LingerAfterDone: 3 * time.Second})
	target, err := url.Parse("http://" + c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	proxy := httputil.NewSingleHostReverseProxy(target)
	var mu sync.Mutex
	calls := 0
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		fail := calls%2 == 1
		mu.Unlock()
		if fail {
			http.Error(w, "transient outage", http.StatusInternalServerError)
			return
		}
		proxy.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	w := newTestWorker(t, flaky.URL, map[string]Runner{"toy": toyRunner})
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
}

func TestWorkerRejects4xxAsPermanent(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such job", http.StatusNotFound)
	}))
	defer srv.Close()
	w := newTestWorker(t, srv.URL, map[string]Runner{"toy": toyRunner})
	start := time.Now()
	err := w.Run(context.Background())
	if err == nil {
		t.Fatal("want error from 404 coordinator")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("4xx should fail fast, took %s", elapsed)
	}
}

func TestArtifactFetchVerifiesAndCaches(t *testing.T) {
	dir := t.TempDir()
	content := []byte("rate,threads\n480,8\n")
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	sha := obs.HashBytes(content)
	spec := toySpec(1)
	spec.Artifacts = map[string]string{"dataset": sha}
	c := newTestCoordinator(t, CoordinatorConfig{Spec: spec, ArtifactPaths: map[string]string{sha: path}})
	w := newTestWorker(t, c.Addr(), map[string]Runner{"toy": toyRunner})

	got, err := w.ArtifactPath(context.Background(), sha)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(content) {
		t.Fatalf("artifact bytes differ: %q", b)
	}
	again, err := w.ArtifactPath(context.Background(), sha)
	if err != nil || again != got {
		t.Fatalf("cache miss on second fetch: %s, %v", again, err)
	}
	if _, err := w.ArtifactPath(context.Background(), obs.HashBytes([]byte("unknown"))); err == nil {
		t.Fatal("unknown artifact should error")
	}
	// Finish the job so the listener closes.
	go func() {
		spec := toySpec(1)
		payload, _ := toyRunner(context.Background(), nil, spec, 0)
		client := &http.Client{Timeout: 5 * time.Second}
		var lr leaseReply
		postJSONT(t, client, "http://"+c.Addr()+"/dist/lease", leaseRequest{Worker: "w"}, &lr)
		var rr resultReply
		postJSONT(t, client, "http://"+c.Addr()+"/dist/result", resultRequest{LeaseID: lr.LeaseID, Worker: "w", Index: 0, Payload: payload}, &rr)
	}()
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestResumeFromStateJournal(t *testing.T) {
	state := filepath.Join(t.TempDir(), StateFileName)
	spec := toySpec(5)

	c1 := newTestCoordinator(t, CoordinatorConfig{Spec: spec, StateFile: state, LeaseSize: 2})
	w := newTestWorker(t, c1.Addr(), map[string]Runner{"toy": toyRunner})
	go w.Run(context.Background())
	first, err := c1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Restart: same spec, same journal — nothing left to compute, and the
	// payloads come back byte-identical without any worker at all.
	c2, err := NewCoordinator(CoordinatorConfig{Addr: "127.0.0.1:0", Spec: spec, StateFile: state})
	if err != nil {
		t.Fatal(err)
	}
	if st := c2.CoordStats(); st.Resumed != 5 {
		t.Fatalf("Resumed = %d, want 5", st.Resumed)
	}
	second, err := c2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if string(first[i]) != string(second[i]) {
			t.Fatalf("resumed payload %d differs: %s vs %s", i, first[i], second[i])
		}
	}

	sum, err := ReadStateSummary(state)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kind != "toy" || sum.Completed != 5 || sum.Failed != 0 || sum.Total != 5 {
		t.Fatalf("bad summary %+v", sum)
	}
}

func TestStateJournalRejectsDifferentJob(t *testing.T) {
	state := filepath.Join(t.TempDir(), StateFileName)
	c1 := newTestCoordinator(t, CoordinatorConfig{Spec: toySpec(2), StateFile: state, LeaseSize: 2})
	w := newTestWorker(t, c1.Addr(), map[string]Runner{"toy": toyRunner})
	go w.Run(context.Background())
	if _, err := c1.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	other := toySpec(2)
	other.Seed++
	if _, err := NewCoordinator(CoordinatorConfig{Addr: "127.0.0.1:0", Spec: other, StateFile: state}); err == nil {
		t.Fatal("journal from a different job must be rejected")
	} else if !strings.Contains(err.Error(), "different job") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func postJSONT(t *testing.T, client *http.Client, url string, in, out any) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestArtifactPathConcurrentFetch pins the ArtifactPath locking contract:
// artMu guards only the in-memory path map, so concurrent resolutions of
// the same artifact must neither race nor serialize behind one download,
// and every caller must end up with the same verified bytes. (Before the
// fix the mutex was held across the HTTP fetch, so one slow artifact
// stalled every other resolution in the process.)
func TestArtifactPathConcurrentFetch(t *testing.T) {
	dir := t.TempDir()
	content := []byte("rate,threads\n480,8\n560,16\n")
	path := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	sha := obs.HashBytes(content)
	spec := toySpec(1)
	spec.Artifacts = map[string]string{"dataset": sha}
	c := newTestCoordinator(t, CoordinatorConfig{Spec: spec, ArtifactPaths: map[string]string{sha: path}})
	w := newTestWorker(t, c.Addr(), map[string]Runner{"toy": toyRunner})

	const callers = 8
	paths := make([]string, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths[i], errs[i] = w.ArtifactPath(context.Background(), sha)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		b, err := os.ReadFile(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(content) {
			t.Fatalf("caller %d: artifact bytes differ: %q", i, b)
		}
	}
	go w.Run(context.Background())
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestCoordinatorCloseConcurrentProgress pins the close() locking fix:
// shutdown detaches the journal and recorder under c.mu but performs the
// file I/O after releasing it, so status reads racing a shutdown can
// neither deadlock behind a disk flush nor observe torn state. The
// pollers deliberately keep hammering Progress/CoordStats through the
// linger window in which close() runs.
func TestCoordinatorCloseConcurrentProgress(t *testing.T) {
	state := filepath.Join(t.TempDir(), StateFileName)
	c := newTestCoordinator(t, CoordinatorConfig{Spec: toySpec(8), StateFile: state, LeaseSize: 2})
	w := newTestWorker(t, c.Addr(), map[string]Runner{"toy": toyRunner})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = c.Progress()
					_ = c.CoordStats()
				}
			}
		}()
	}
	go w.Run(context.Background())
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // overlap the pollers with the post-Wait close
	close(stop)
	wg.Wait()
}
