// Package dist is the distributed experiment plane: a coordinator/worker
// protocol over HTTP that shards sched-scheduled task sets (CV folds,
// compare cells, surface-grid rows, importance features, topology
// candidates) across processes and machines.
//
// The design leans entirely on the determinism the scheduler already
// guarantees: every task is identified by its index, every task's seed
// derives purely from (base seed, index) via sched.FoldSeed/TaskSeed, and
// every floating-point reduction replays in index order. A task therefore
// computes the same bits on any worker on any machine, which reduces
// distribution to three problems this package solves:
//
//   - leasing: the coordinator partitions [0, NumTasks) into contiguous
//     index ranges (sched.Shard) and hands them out as work leases with a
//     TTL; leases a worker never completes are reclaimed and reassigned.
//   - artifacts: workers resolve datasets and trained models from the
//     coordinator by content address (hex SHA-256, the same addressing the
//     serve registry and obs manifests use) and verify the bytes.
//   - collection: results stream back index-addressed; duplicate delivery
//     (a reclaimed lease finishing late) is idempotent — the first write
//     wins, and since payloads are deterministic both writes carry the
//     same bytes anyway.
//
// Protocol (JSON over HTTP, served by the coordinator):
//
//	GET  /dist/job             → Spec (kind, seed, task count, config, artifact hashes)
//	POST /dist/lease           {"worker":id,"metrics":{...}} → {"lease_id","lo","hi"} | {"done":true} | {"retry_ms":n}
//	POST /dist/result          {"lease_id","worker","index","payload"|"error","events"} → {"done","duplicate"}
//	GET  /dist/artifact/{sha}  → artifact bytes (verified by the worker)
//	GET  /dist/progress        → {"completed","failed","total","workers","elapsed_sec"}
//	GET  /metrics              → Prometheus text, including federated per-worker histograms
//	GET  /healthz              → liveness
//
// Every worker request carries the httpx trace headers (X-NNWC-Run,
// X-NNWC-Worker), so the coordinator's server-side spans attribute work
// to cluster identities, not TCP peers. Observability rides the protocol
// both ways: workers buffer their per-task obs events and ship them on
// /dist/result (merged by the coordinator into one deterministic cluster
// trace), and push cumulative histogram snapshots on every /dist/lease
// renewal (federated into cluster-wide /metrics series).
//
// Completed indexes journal to an optional state file, so a restarted
// coordinator (same spec fingerprint) skips them — resumable runs.
package dist

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"nnwc/internal/obs"
	"nnwc/internal/obs/metrics"
)

// Spec describes one distributed job completely: a worker holding a Spec
// and an index can compute that task's exact result bytes.
type Spec struct {
	// JobID names the run (usually the obs run ID); informational.
	JobID string `json:"job_id"`
	// Kind selects the worker-side runner ("crossval", "compare", ...).
	Kind string `json:"kind"`
	// Seed is the base seed; per-task seeds derive from (Seed, index).
	Seed uint64 `json:"seed"`
	// NumTasks is the size of the index space [0, NumTasks).
	NumTasks int `json:"num_tasks"`
	// Config carries the kind-specific parameters (primitives only — the
	// worker reconstructs model configs from them exactly as the CLI does).
	Config json.RawMessage `json:"config,omitempty"`
	// Artifacts maps role ("dataset", "model") → hex SHA-256. Workers
	// fetch the bytes from the coordinator's content-addressed store.
	Artifacts map[string]string `json:"artifacts,omitempty"`
}

// Fingerprint identifies everything result bits depend on — kind, seed,
// task count, config, artifact hashes (JobID is excluded: two runs of the
// same experiment may resume each other). The state journal stores it so
// a resumed coordinator never splices results from a different job.
func (s Spec) Fingerprint() string {
	roles := make([]string, 0, len(s.Artifacts))
	for role := range s.Artifacts {
		roles = append(roles, role)
	}
	sort.Strings(roles)
	canon := fmt.Sprintf("kind=%s seed=%d tasks=%d config=%s", s.Kind, s.Seed, s.NumTasks, s.Config)
	for _, role := range roles {
		canon += fmt.Sprintf(" %s=%s", role, s.Artifacts[role])
	}
	return obs.HashBytes([]byte(canon))
}

// Validate rejects specs the protocol cannot carry.
func (s Spec) Validate() error {
	if s.Kind == "" {
		return fmt.Errorf("dist: spec has no kind")
	}
	if s.NumTasks <= 0 {
		return fmt.Errorf("dist: spec %q has %d tasks", s.Kind, s.NumTasks)
	}
	return nil
}

// Float is a float64 that marshals as a JSON string in Go's shortest
// round-trip form (strconv 'g', precision -1), so result payloads cross
// the wire bit-exactly — including NaN and ±Inf, which encoding/json
// rejects as bare numbers. HMRE is NaN when undefined, so every payload
// type in dist/jobs uses Float/Floats rather than raw float64.
type Float float64

// MarshalJSON encodes the exact value as a string.
func (f Float) MarshalJSON() ([]byte, error) {
	return strconv.AppendQuote(nil, strconv.FormatFloat(float64(f), 'g', -1, 64)), nil
}

// UnmarshalJSON decodes a string (exact) or bare number (compatibility).
func (f *Float) UnmarshalJSON(b []byte) error {
	s := string(b)
	if unq, err := strconv.Unquote(s); err == nil {
		s = unq
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("dist: bad float %q: %w", string(b), err)
	}
	*f = Float(v)
	return nil
}

// Floats is a bit-exact, NaN-safe float64 slice for wire payloads.
type Floats []float64

// MarshalJSON encodes each element as an exact string.
func (fs Floats) MarshalJSON() ([]byte, error) {
	out := make([]Float, len(fs))
	for i, v := range fs {
		out[i] = Float(v)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a []Float back into raw float64s.
func (fs *Floats) UnmarshalJSON(b []byte) error {
	var in []Float
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*fs = make(Floats, len(in))
	for i, v := range in {
		(*fs)[i] = float64(v)
	}
	return nil
}

// Wire messages.

type leaseRequest struct {
	Worker string `json:"worker"`
	// Metrics carries the worker's cumulative histogram snapshots (keyed
	// by the Metric* role names), pushed on every lease request so the
	// coordinator's /metrics federates live per-worker series. Cumulative
	// snapshots make the push idempotent: the coordinator replaces, never
	// adds.
	Metrics map[string]metrics.HistogramSnapshot `json:"metrics,omitempty"`
}

type leaseReply struct {
	// LeaseID is 0 when no lease was granted (done or retry).
	LeaseID uint64 `json:"lease_id,omitempty"`
	Lo      int    `json:"lo,omitempty"`
	Hi      int    `json:"hi,omitempty"`
	// Done means every task has a result; the worker can exit.
	Done bool `json:"done,omitempty"`
	// RetryMS hints how long to wait before asking again when no lease
	// was available (other workers hold everything outstanding).
	RetryMS int `json:"retry_ms,omitempty"`
}

type resultRequest struct {
	LeaseID uint64 `json:"lease_id"`
	Worker  string `json:"worker"`
	Index   int    `json:"index"`
	// Exactly one of Payload (success) and Error (deterministic task
	// failure — not retried, it would fail identically anywhere) is set.
	Payload json.RawMessage `json:"payload,omitempty"`
	Error   string          `json:"error,omitempty"`
	// ElapsedMS is the worker-side task wall time, for latency metrics.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Events is the task's buffered obs trace (JSONL): the runner's
	// events plus the worker's closing dist_task span. The coordinator
	// splices them into the merged cluster trace in task-index order.
	Events string `json:"events,omitempty"`
}

type resultReply struct {
	Done      bool `json:"done,omitempty"`
	Duplicate bool `json:"duplicate,omitempty"`
}

// Progress is the /dist/progress reply and ReadStateSummary's shape.
type Progress struct {
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Total     int `json:"total"`
	// Workers counts the distinct workers holding live leases right now
	// (0 in journal summaries, which have no lease table).
	Workers int `json:"workers,omitempty"`
	// ElapsedSec is the coordinator's wall time since start — the
	// denominator `nnwc runs tail` turns into a throughput and ETA.
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
}
