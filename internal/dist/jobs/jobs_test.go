package jobs

// Multi-process distribution tests: the test binary re-executes itself as
// worker processes (keyed on the NNWC_DIST_WORKER environment variable),
// so the parity and fault tests exercise real process boundaries — HTTP
// transport, artifact fetch over the wire, SIGKILL mid-lease — not
// goroutine stand-ins.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"nnwc/internal/core"
	"nnwc/internal/dist"
	"nnwc/internal/rng"
	"nnwc/internal/workload"
)

func TestMain(m *testing.M) {
	if url := os.Getenv("NNWC_DIST_WORKER"); url != "" {
		runTestWorker(url)
		return
	}
	os.Exit(m.Run())
}

// runTestWorker is the child-process entry point: a real jobs worker plus
// a "sleep" toy runner the fault tests use for timing-robust kills.
func runTestWorker(url string) {
	runners := Runners()
	runners["sleep"] = sleepRunner
	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator: url,
		CacheDir:    os.Getenv("NNWC_DIST_CACHE"),
		Runners:     runners,
		Parallelism: 1,
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		WaitForJob:  30 * time.Second,
		GiveUp:      30 * time.Second,
	})
	if err == nil {
		err = w.Run(context.Background())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// sleepRunner completes quickly — unless this worker was started with
// NNWC_DIST_HANG and the index is past the configured threshold, in which
// case it wedges, simulating a worker that stops making progress while
// holding a lease.
func sleepRunner(ctx context.Context, env dist.Env, spec dist.Spec, index int) (json.RawMessage, error) {
	var cfg struct {
		HangFrom int `json:"hang_from"`
	}
	if err := json.Unmarshal(spec.Config, &cfg); err != nil {
		return nil, err
	}
	if os.Getenv("NNWC_DIST_HANG") != "" && index >= cfg.HangFrom {
		select {} // wedge until SIGKILL
	}
	time.Sleep(5 * time.Millisecond)
	return json.Marshal(map[string]int{"i": index})
}

// spawnWorker starts this test binary as a worker child process. The
// returned process is reaped (and killed if still alive) at test cleanup.
func spawnWorker(t *testing.T, url string, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"NNWC_DIST_WORKER="+url,
		"NNWC_DIST_CACHE="+t.TempDir(),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// waitProgress polls the coordinator's /dist/progress endpoint until at
// least want tasks have completed.
func waitProgress(t *testing.T, addr string, want int) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + addr + "/dist/progress")
		if err == nil {
			var p dist.Progress
			err = json.NewDecoder(resp.Body).Decode(&p)
			resp.Body.Close()
			if err == nil && p.Completed >= want {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator never reached %d completed tasks", want)
}

// The seed-reference constants from internal/core/seedref_test.go: the
// pinned Table-2 numbers for CrossValidate(syntheticDataset(120,42),
// fastConfig(), 4, 7). The distributed plane must land on the same bits.
const (
	seedRefAvg0    = 0.0027368722195466755
	seedRefAvg1    = 0.0022901977227838028
	seedRefOverall = 0.0025135349711652389
)

// writeParityCSV materializes the seed-reference synthetic dataset
// (core_test.go's syntheticDataset(120, 42)) as a CSV artifact. WriteCSV
// prints shortest-round-trip decimals, so the bytes reload exactly.
func writeParityCSV(t *testing.T) string {
	t.Helper()
	src := rng.New(42)
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u", "v"})
	for i := 0; i < 120; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		ds.MustAppend(workload.Sample{
			X: []float64{a, b},
			Y: []float64{10 + 3*a*a - b, 5 + math.Sin(a) + 2*b},
		})
	}
	path := filepath.Join(t.TempDir(), "parity.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// serialReference computes the in-process cross-validation the distributed
// run must reproduce, from the same CSV bytes the workers fetch.
func serialReference(t *testing.T, csvPath string) *core.CVResult {
	t.Helper()
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := workload.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ModelConfig("10", 800, 1)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := core.CrossValidate(ds, cfg, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	return cv
}

// requireBitIdentical fails unless two CV results agree to the last bit —
// the distribution invariant is bytes, not tolerance.
func requireBitIdentical(t *testing.T, serial, distributed *core.CVResult) {
	t.Helper()
	if len(distributed.Trials) != len(serial.Trials) {
		t.Fatalf("trial count %d != %d", len(distributed.Trials), len(serial.Trials))
	}
	for i := range serial.Trials {
		for j := range serial.Trials[i].Errors {
			a, b := serial.Trials[i].Errors[j], distributed.Trials[i].Errors[j]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("trial %d indicator %d: %.17g != %.17g", i, j, b, a)
			}
		}
	}
	for j := range serial.Averages {
		a, b := serial.Averages[j], distributed.Averages[j]
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("avg[%d]: %.17g != %.17g", j, b, a)
		}
	}
	if math.Float64bits(serial.OverallError()) != math.Float64bits(distributed.OverallError()) {
		t.Fatalf("overall: %.17g != %.17g", distributed.OverallError(), serial.OverallError())
	}
}

// TestDistCrossvalParity is the acceptance pin: a coordinator and two
// worker processes reproduce the serial seed-reference cross-validation
// byte-for-byte, and both agree with the pinned constants to 1e-9.
func TestDistCrossvalParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process parity test")
	}
	csvPath := writeParityCSV(t)
	serial := serialReference(t, csvPath)

	opt := Options{
		Addr:      "127.0.0.1:0",
		JobID:     "parity-test",
		LeaseSize: 1,
		OnStart: func(addr string) {
			spawnWorker(t, addr)
			spawnWorker(t, addr)
		},
	}
	cv, stats, err := CoordinateCrossval(context.Background(), opt, csvPath, 4, "10", 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, serial, cv)
	for j, want := range []float64{seedRefAvg0, seedRefAvg1} {
		if math.Abs(cv.Averages[j]-want) > 1e-9 {
			t.Fatalf("avg[%d] = %.17g, seed reference %.17g", j, cv.Averages[j], want)
		}
	}
	if got := cv.OverallError(); math.Abs(got-seedRefOverall) > 1e-9 {
		t.Fatalf("overall = %.17g, seed reference %.17g", got, seedRefOverall)
	}
	if stats.Leases == 0 {
		t.Fatal("no leases recorded")
	}
}

// TestDistCrossvalKillAndRestartWorker kills a worker process mid-run and
// replaces it; the reassigned tasks must still land on the serial bits.
func TestDistCrossvalKillAndRestartWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fault test")
	}
	csvPath := writeParityCSV(t)
	serial := serialReference(t, csvPath)

	opt := Options{
		Addr:      "127.0.0.1:0",
		JobID:     "kill-restart-test",
		LeaseSize: 1,
		LeaseTTL:  time.Second,
		StateFile: filepath.Join(t.TempDir(), dist.StateFileName),
		OnStart: func(addr string) {
			victim := spawnWorker(t, addr)
			go func() {
				waitProgress(t, addr, 1)
				victim.Process.Kill()
				victim.Wait()
				spawnWorker(t, addr)
			}()
		},
	}
	cv, _, err := CoordinateCrossval(context.Background(), opt, csvPath, 4, "10", 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, serial, cv)
}

// TestDistWorkerKilledMidLease pins the reassignment machinery itself:
// a wedged worker is SIGKILLed while holding a lease, the lease expires,
// and a healthy replacement finishes the job.
func TestDistWorkerKilledMidLease(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fault test")
	}
	const n = 6
	cfg, err := json.Marshal(map[string]int{"hang_from": 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Addr: "127.0.0.1:0",
		Spec: dist.Spec{
			JobID:    "kill-test",
			Kind:     "sleep",
			Seed:     1,
			NumTasks: n,
			Config:   cfg,
		},
		LeaseSize:    2,
		LeaseTTL:     300 * time.Millisecond,
		PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	// The wedging worker completes tasks 0 and 1, then hangs on task 2
	// while holding its lease. Kill it once the first results are in.
	victim := spawnWorker(t, c.Addr(), "NNWC_DIST_HANG=1")
	waitProgress(t, c.Addr(), 2)
	victim.Process.Kill()
	victim.Wait()

	spawnWorker(t, c.Addr())
	payloads, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(payloads) != n {
		t.Fatalf("got %d payloads, want %d", len(payloads), n)
	}
	for i, p := range payloads {
		var got struct {
			I int `json:"i"`
		}
		if err := json.Unmarshal(p, &got); err != nil {
			t.Fatalf("payload %d: %v", i, err)
		}
		if got.I != i {
			t.Fatalf("payload %d carries index %d", i, got.I)
		}
	}
	if st := c.CoordStats(); st.Reassigned == 0 {
		t.Fatal("no tasks were reassigned after the kill")
	}
}
