package jobs

// Regression tests for the artifact cache's locking contract: mu guards
// only the maps, fetch and parse run unlocked, and the publish re-checks
// the map so racing parsers discard their copy. Before the fix, the
// mutex was held across the fetch and parse, so one slow artifact
// resolution serialized every unrelated task in the process.

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nnwc/internal/core"
	"nnwc/internal/dist"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// stubEnv resolves every artifact to one local file, standing in for the
// worker's fetch-over-HTTP path.
type stubEnv struct{ path string }

func (e stubEnv) ArtifactPath(ctx context.Context, sha string) (string, error) {
	return e.path, nil
}

func newTestCache() *artifactCache {
	return &artifactCache{
		datasets:  make(map[string]*workload.Dataset),
		models:    make(map[string]*core.NNModel),
		baselines: make(map[string]*importanceBaseline),
	}
}

// TestArtifactCacheConcurrentDataset pins that concurrent callers
// neither race nor get private copies: all eight must share the one
// first-published parse of the dataset.
func TestArtifactCacheConcurrentDataset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	csv := "rate,threads,y:throughput\n480,8,120\n560,16,130\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	cache := newTestCache()
	spec := dist.Spec{Kind: "toy", Artifacts: map[string]string{RoleDataset: "sha-dataset"}}

	const callers = 8
	got := make([]*workload.Dataset, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = cache.dataset(context.Background(), stubEnv{path: path}, spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if got[i] != got[0] {
			t.Errorf("caller %d holds a private dataset copy; the cache must share one parse", i)
		}
	}
	if n := len(got[0].Samples); n != 2 {
		t.Fatalf("shared dataset has %d samples, want 2", n)
	}
}

// TestArtifactCacheConcurrentModel is the same pin for the model map.
func TestArtifactCacheConcurrentModel(t *testing.T) {
	ds := workload.NewDataset([]string{"rate", "threads"}, []string{"throughput"})
	for i := 0; i < 8; i++ {
		a, b := float64(i%4), float64(i/4)
		ds.MustAppend(workload.Sample{X: []float64{a, b}, Y: []float64{10 + a - b}})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 20
	model, err := core.Fit(ds, core.Config{Hidden: []int{3}, Train: &tc, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	cache := newTestCache()
	spec := dist.Spec{Kind: "toy", Artifacts: map[string]string{RoleModel: "sha-model"}}

	const callers = 8
	got := make([]*core.NNModel, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = cache.model(context.Background(), stubEnv{path: path}, spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if got[i] != got[0] {
			t.Errorf("caller %d holds a private model copy; the cache must share one load", i)
		}
	}
}
