package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"nnwc/internal/core"
	"nnwc/internal/dist"
	"nnwc/internal/httpx"
	"nnwc/internal/obs"
	"nnwc/internal/sensitivity"
	"nnwc/internal/surface"
	"nnwc/internal/workload"
)

// Options parameterizes the coordinator side of a distributed experiment.
// Zero values defer to dist.CoordinatorConfig defaults.
type Options struct {
	// Addr is the coordinator listen address (e.g. ":9000").
	Addr string
	// JobID names the run in the spec (informational; usually the obs run
	// ID). Excluded from the resume fingerprint.
	JobID string
	// LeaseSize, LeaseTTL, LingerAfterDone: see dist.CoordinatorConfig.
	LeaseSize       int
	LeaseTTL        time.Duration
	LingerAfterDone time.Duration
	// StateFile journals completed tasks for resume; "" disables.
	StateFile string
	// ClusterTraceFile is where the coordinator writes the merged cluster
	// trace when the job completes; "" disables trace merging.
	ClusterTraceFile string
	// Timeouts harden the coordinator's HTTP listener.
	Timeouts httpx.Timeouts
	// Logf receives progress lines (nil is silent).
	Logf func(format string, args ...any)
	// OnStart, when set, is called with the bound address once the
	// coordinator is listening — the hook tests use to spawn workers.
	OnStart func(addr string)
}

// coordinate runs one job to completion: build the coordinator, serve,
// wait, and hand back the index-ordered payloads plus per-job stats.
func coordinate(ctx context.Context, opt Options, spec dist.Spec, paths map[string]string) ([]json.RawMessage, dist.Stats, error) {
	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Addr:             opt.Addr,
		Spec:             spec,
		ArtifactPaths:    paths,
		LeaseSize:        opt.LeaseSize,
		LeaseTTL:         opt.LeaseTTL,
		LingerAfterDone:  opt.LingerAfterDone,
		StateFile:        opt.StateFile,
		ClusterTraceFile: opt.ClusterTraceFile,
		Timeouts:         opt.Timeouts,
		Logf:             opt.Logf,
	})
	if err != nil {
		return nil, dist.Stats{}, err
	}
	if err := c.Start(); err != nil {
		return nil, dist.Stats{}, err
	}
	if opt.OnStart != nil {
		opt.OnStart(c.Addr())
	}
	payloads, err := c.Wait(ctx)
	return payloads, c.CoordStats(), err
}

func decodePayload(payloads []json.RawMessage, index int, out any) error {
	if err := json.Unmarshal(payloads[index], out); err != nil {
		return fmt.Errorf("jobs: decoding task %d payload: %w", index, err)
	}
	return nil
}

// CoordinateCrossval distributes one k-fold cross-validation: one task
// per fold, reduced with core.ReduceTrials in ascending fold order — the
// same result CrossValidateWorkers computes locally, to the bit.
func CoordinateCrossval(ctx context.Context, opt Options, dataPath string, k int, hidden string, epochs int, seed uint64) (*core.CVResult, dist.Stats, error) {
	ds, sha, err := loadHashedDataset(dataPath)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	// Fail on malformed -hidden before any worker does.
	if _, err := ModelConfig(hidden, epochs, seed); err != nil {
		return nil, dist.Stats{}, err
	}
	cfgJSON, err := json.Marshal(CrossvalConfig{K: k, Hidden: hidden, Epochs: epochs})
	if err != nil {
		return nil, dist.Stats{}, err
	}
	spec := dist.Spec{
		JobID:     opt.JobID,
		Kind:      KindCrossval,
		Seed:      seed,
		NumTasks:  k,
		Config:    cfgJSON,
		Artifacts: map[string]string{RoleDataset: sha},
	}
	payloads, stats, err := coordinate(ctx, opt, spec, map[string]string{sha: dataPath})
	if err != nil {
		return nil, stats, err
	}
	trials := make([]core.Trial, k)
	for f := range trials {
		var tr TrialResult
		if err := decodePayload(payloads, f, &tr); err != nil {
			return nil, stats, err
		}
		trials[f] = core.Trial{Errors: tr.Errors}
	}
	targetNames := append([]string(nil), ds.TargetNames...)
	return core.ReduceTrials(targetNames, trials), stats, nil
}

// FamilyMean is one model family's reduced comparison score.
type FamilyMean struct {
	Name string
	// Mean is the family's HMRE averaged over folds in ascending order —
	// the same summation the local compare loop performs.
	Mean float64
}

// CoordinateCompare distributes the §4 model-family comparison: one task
// per (family, fold) cell, reduced per family in ascending fold order.
func CoordinateCompare(ctx context.Context, opt Options, dataPath string, k int, hidden string, epochs int, seed uint64) ([]FamilyMean, dist.Stats, error) {
	_, sha, err := loadHashedDataset(dataPath)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	fams, err := CompareFamilies(hidden, epochs)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	cfgJSON, err := json.Marshal(CompareConfig{K: k, Hidden: hidden, Epochs: epochs})
	if err != nil {
		return nil, dist.Stats{}, err
	}
	spec := dist.Spec{
		JobID:     opt.JobID,
		Kind:      KindCompare,
		Seed:      seed,
		NumTasks:  len(fams) * k,
		Config:    cfgJSON,
		Artifacts: map[string]string{RoleDataset: sha},
	}
	payloads, stats, err := coordinate(ctx, opt, spec, map[string]string{sha: dataPath})
	if err != nil {
		return nil, stats, err
	}
	out := make([]FamilyMean, len(fams))
	for fi, fam := range fams {
		var errSum float64
		for f := 0; f < k; f++ {
			var cell CellResult
			if err := decodePayload(payloads, fi*k+f, &cell); err != nil {
				return nil, stats, err
			}
			errSum += float64(cell.Mean)
		}
		out[fi] = FamilyMean{Name: fam.Name, Mean: errSum / float64(k)}
	}
	return out, stats, nil
}

// CoordinateSurface distributes a §5 response-surface sweep: one task per
// grid row (XValue), assembled into the Grid in row order.
func CoordinateSurface(ctx context.Context, opt Options, modelPath string, sl surface.Slice) (*surface.Grid, dist.Stats, error) {
	model, sha, err := loadHashedModel(modelPath)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	if err := sl.Validate(model.InputDim(), model.OutputDim()); err != nil {
		return nil, dist.Stats{}, err
	}
	cfgJSON, err := json.Marshal(SurfaceConfig{
		Fixed:   dist.Floats(sl.Fixed),
		XIndex:  sl.XIndex,
		YIndex:  sl.YIndex,
		XValues: dist.Floats(sl.XValues),
		YValues: dist.Floats(sl.YValues),
		Output:  sl.Output,
	})
	if err != nil {
		return nil, dist.Stats{}, err
	}
	spec := dist.Spec{
		JobID:     opt.JobID,
		Kind:      KindSurface,
		NumTasks:  len(sl.XValues),
		Config:    cfgJSON,
		Artifacts: map[string]string{RoleModel: sha},
	}
	payloads, stats, err := coordinate(ctx, opt, spec, map[string]string{sha: modelPath})
	if err != nil {
		return nil, stats, err
	}
	z := make([][]float64, len(sl.XValues))
	for i := range z {
		var row RowResult
		if err := decodePayload(payloads, i, &row); err != nil {
			return nil, stats, err
		}
		z[i] = row.Z
	}
	return &surface.Grid{Slice: sl, Z: z}, stats, nil
}

// CoordinateImportance distributes permutation feature importance: one
// task per feature, each scoring against the worker-side shared baseline.
func CoordinateImportance(ctx context.Context, opt Options, modelPath, dataPath string, repeats int, seed uint64) (*sensitivity.Importance, dist.Stats, error) {
	_, modelSHA, err := loadHashedModel(modelPath)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	ds, dataSHA, err := loadHashedDataset(dataPath)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	cfgJSON, err := json.Marshal(ImportanceConfig{Repeats: repeats})
	if err != nil {
		return nil, dist.Stats{}, err
	}
	spec := dist.Spec{
		JobID:     opt.JobID,
		Kind:      KindImportance,
		Seed:      seed,
		NumTasks:  ds.NumFeatures(),
		Config:    cfgJSON,
		Artifacts: map[string]string{RoleModel: modelSHA, RoleDataset: dataSHA},
	}
	payloads, stats, err := coordinate(ctx, opt, spec, map[string]string{modelSHA: modelPath, dataSHA: dataPath})
	if err != nil {
		return nil, stats, err
	}
	im := &sensitivity.Importance{
		FeatureNames: append([]string(nil), ds.FeatureNames...),
		TargetNames:  append([]string(nil), ds.TargetNames...),
		Scores:       make([][]float64, ds.NumFeatures()),
	}
	for i := range im.Scores {
		var sc ScoresResult
		if err := decodePayload(payloads, i, &sc); err != nil {
			return nil, stats, err
		}
		im.Scores[i] = sc.Scores
	}
	return im, stats, nil
}

// CoordinateSelect distributes topology selection: one task per candidate
// hidden layout, reduced with core.PickBest over the declared order.
func CoordinateSelect(ctx context.Context, opt Options, dataPath string, candidates [][]int, k, epochs int, seed uint64) (*core.SelectionResult, dist.Stats, error) {
	if len(candidates) == 0 {
		return nil, dist.Stats{}, fmt.Errorf("jobs: no candidate topologies")
	}
	_, sha, err := loadHashedDataset(dataPath)
	if err != nil {
		return nil, dist.Stats{}, err
	}
	cfgJSON, err := json.Marshal(SelectConfig{K: k, Epochs: epochs, Candidates: candidates})
	if err != nil {
		return nil, dist.Stats{}, err
	}
	spec := dist.Spec{
		JobID:     opt.JobID,
		Kind:      KindSelect,
		Seed:      seed,
		NumTasks:  len(candidates),
		Config:    cfgJSON,
		Artifacts: map[string]string{RoleDataset: sha},
	}
	payloads, stats, err := coordinate(ctx, opt, spec, map[string]string{sha: dataPath})
	if err != nil {
		return nil, stats, err
	}
	res := &core.SelectionResult{Candidates: make([]core.NodeCountResult, len(candidates))}
	for i, hidden := range candidates {
		var cand CandidateResult
		if err := decodePayload(payloads, i, &cand); err != nil {
			return nil, stats, err
		}
		res.Candidates[i] = core.NodeCountResult{
			Hidden: append([]int(nil), hidden...),
			Error:  float64(cand.Error),
			Params: cand.Params,
		}
	}
	res.Best = core.PickBest(res.Candidates)
	return res, stats, nil
}

// loadHashedDataset opens the coordinator-local dataset and fingerprints
// its bytes — the content address workers fetch it by.
func loadHashedDataset(path string) (*workload.Dataset, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	ds, err := workload.ReadCSV(f)
	if err != nil {
		return nil, "", fmt.Errorf("jobs: parsing dataset %s: %w", path, err)
	}
	sha, err := obs.HashFile(path)
	if err != nil {
		return nil, "", err
	}
	return ds, sha, nil
}

// loadHashedModel loads the coordinator-local model and fingerprints its
// bytes.
func loadHashedModel(path string) (*core.NNModel, string, error) {
	model, err := core.LoadModelFile(path)
	if err != nil {
		return nil, "", err
	}
	sha, err := obs.HashFile(path)
	if err != nil {
		return nil, "", err
	}
	return model, sha, nil
}
