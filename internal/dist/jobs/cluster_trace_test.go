package jobs

// Multi-process cluster-trace tests: the merged trace a coordinated run
// writes must canonicalize to the same bytes no matter how many worker
// processes served it — and no matter whether a worker was SIGKILLed and
// its lease reassigned along the way.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nnwc/internal/dist"
	"nnwc/internal/obs"
)

// runTraceCrossval coordinates one cross-validation job with `workers`
// worker processes and returns the canonicalized merged cluster trace.
func runTraceCrossval(t *testing.T, csvPath string, workers int) []byte {
	t.Helper()
	tracePath := filepath.Join(t.TempDir(), dist.ClusterTraceFileName)
	opt := Options{
		Addr:             "127.0.0.1:0",
		JobID:            "trace-test",
		LeaseSize:        1,
		ClusterTraceFile: tracePath,
		OnStart: func(addr string) {
			for i := 0; i < workers; i++ {
				spawnWorker(t, addr)
			}
		},
	}
	if _, _, err := CoordinateCrossval(context.Background(), opt, csvPath, 4, "10", 150, 7); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("cluster trace not written: %v", err)
	}
	canon, err := obs.CanonicalizeJSONL(raw)
	if err != nil {
		t.Fatal(err)
	}
	return canon
}

// TestDistClusterTraceByteIdentical pins the merge invariant end to end:
// 1, 2, and 8 worker processes produce byte-identical canonical traces.
func TestDistClusterTraceByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process trace test")
	}
	csvPath := writeParityCSV(t)
	ref := runTraceCrossval(t, csvPath, 1)
	// The runner's fold summaries crossed the wire into the merged trace.
	if n := strings.Count(string(ref), `"ev":"fold"`); n != 4 {
		t.Fatalf("canonical trace has %d fold events, want 4:\n%s", n, ref)
	}
	for _, workers := range []int{2, 8} {
		if got := runTraceCrossval(t, csvPath, workers); !bytes.Equal(got, ref) {
			t.Fatalf("%d-worker canonical trace differs from 1-worker reference:\ngot:\n%s\nwant:\n%s", workers, got, ref)
		}
	}
}

// newSleepCoordinator starts a coordinator for the toy sleep job with a
// cluster trace attached.
func newSleepCoordinator(t *testing.T, tracePath string, n int) *dist.Coordinator {
	t.Helper()
	cfg, err := json.Marshal(map[string]int{"hang_from": 2})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Addr: "127.0.0.1:0",
		Spec: dist.Spec{
			JobID:    "trace-kill-test",
			Kind:     "sleep",
			Seed:     1,
			NumTasks: n,
			Config:   cfg,
		},
		LeaseSize:        2,
		LeaseTTL:         300 * time.Millisecond,
		PollInterval:     20 * time.Millisecond,
		ClusterTraceFile: tracePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDistClusterTraceSurvivesKill SIGKILLs a wedged worker mid-lease and
// lets a healthy replacement finish: the canonical trace must match a
// clean single-worker run bit for bit, with the reassignment recorded
// only in the volatile ops narrative.
func TestDistClusterTraceSurvivesKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process trace fault test")
	}
	const n = 6

	refPath := filepath.Join(t.TempDir(), dist.ClusterTraceFileName)
	ref := newSleepCoordinator(t, refPath, n)
	spawnWorker(t, ref.Addr())
	if _, err := ref.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	refRaw, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := obs.CanonicalizeJSONL(refRaw)
	if err != nil {
		t.Fatal(err)
	}

	killPath := filepath.Join(t.TempDir(), dist.ClusterTraceFileName)
	c := newSleepCoordinator(t, killPath, n)
	victim := spawnWorker(t, c.Addr(), "NNWC_DIST_HANG=1")
	waitProgress(t, c.Addr(), 2)
	victim.Process.Kill()
	victim.Wait()
	spawnWorker(t, c.Addr())
	if _, err := c.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := c.CoordStats(); st.Reassigned == 0 {
		t.Fatal("no tasks were reassigned after the kill")
	}
	raw, err := os.ReadFile(killPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"ev":"dist_reassign"`) {
		t.Fatalf("raw trace records no reassignment:\n%s", raw)
	}
	got, err := obs.CanonicalizeJSONL(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("canonical trace after SIGKILL differs from clean run:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
