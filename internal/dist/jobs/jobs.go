// Package jobs binds the distributed experiment plane to the experiment
// kinds the CLI schedules locally: cross-validation folds, model-family
// compare cells, surface-grid rows, permutation-importance features, and
// topology-selection candidates. Each kind defines
//
//   - a primitive-only config (core.Config carries interfaces, so the wire
//     form re-derives it exactly the way cmd/nnwc does),
//   - a worker-side Runner computing one index's payload, and
//   - a coordinator-side Coordinate* function that builds the Spec, serves
//     the artifacts, and reduces the index-addressed payloads in the same
//     order as the local scheduler — bit-identical results either way.
package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"nnwc/internal/core"
	"nnwc/internal/dist"
	"nnwc/internal/linear"
	"nnwc/internal/nn"
	"nnwc/internal/obs"
	"nnwc/internal/poly"
	"nnwc/internal/rng"
	"nnwc/internal/stats"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// Job kinds (Spec.Kind values).
const (
	KindCrossval   = "crossval"
	KindCompare    = "compare"
	KindSurface    = "surface"
	KindImportance = "importance"
	KindSelect     = "select"
)

// Artifact roles (Spec.Artifacts keys).
const (
	RoleDataset = "dataset"
	RoleModel   = "model"
)

// ParseLayout parses a comma-separated hidden-layer spec ("16" or "16,8")
// into layer sizes. It accepts the same inputs the CLI's -hidden flag
// always has (floats truncate, "inf" is admitted by the shared float
// parser), so local and distributed runs derive identical configs from
// identical strings.
func ParseLayout(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if strings.EqualFold(p, "inf") {
			out = append(out, int(math.Inf(1)))
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, int(v))
	}
	return out, nil
}

// ModelConfig derives the MLP training config from the CLI's primitive
// flags — the single definition both cmd/nnwc and the worker-side runners
// use, so a shipped (hidden, epochs, seed) triple reconstructs the exact
// config the local path would have built.
func ModelConfig(hidden string, epochs int, seed uint64) (core.Config, error) {
	sizes, err := ParseLayout(hidden)
	if err != nil {
		return core.Config{}, fmt.Errorf("parsing -hidden: %w", err)
	}
	tc := train.DefaultConfig()
	if epochs > 0 {
		tc.MaxEpochs = epochs
	}
	return core.Config{Hidden: sizes, Train: &tc, Seed: seed}, nil
}

// Family is one model family in the §4 comparison: a name and a fitter.
// The seed argument matters only to the stochastic families (mlp, lnn);
// the closed-form ones ignore it.
type Family struct {
	Name string
	Fit  func(tr *workload.Dataset, seed uint64) (core.Predictor, error)
}

// CompareFamilies is the §4 model-family table — the one list both
// cmdCompareRun and the distributed compare runner draw from, so a
// compare cell computes the same bits wherever it lands.
func CompareFamilies(hidden string, epochs int) ([]Family, error) {
	mlpCfg, err := ModelConfig(hidden, epochs, 0)
	if err != nil {
		return nil, err
	}
	lnnCfg := mlpCfg
	lnnCfg.HiddenActivation = nn.LogCompress{}
	return []Family{
		// A whisker of ridge keeps the solve alive when a swept feature is
		// constant in the data (a pinned parameter makes OLS singular).
		{"linear", func(tr *workload.Dataset, _ uint64) (core.Predictor, error) {
			return linear.Fit(tr.Xs(), tr.Ys(), linear.Options{Lambda: 1e-8})
		}},
		{"poly2+int", func(tr *workload.Dataset, _ uint64) (core.Predictor, error) {
			return poly.Fit(poly.Polynomial{Degree: 2, Interactions: true}, tr.Xs(), tr.Ys(), poly.Options{Lambda: 1e-4, Standardize: true})
		}},
		{"log", func(tr *workload.Dataset, _ uint64) (core.Predictor, error) {
			return poly.Fit(poly.Logarithmic{}, tr.Xs(), tr.Ys(), poly.Options{Lambda: 1e-8})
		}},
		{"mlp", func(tr *workload.Dataset, s uint64) (core.Predictor, error) {
			cfg := mlpCfg
			cfg.Seed = s
			return core.Fit(tr, cfg)
		}},
		{"lnn", func(tr *workload.Dataset, s uint64) (core.Predictor, error) {
			cfg := lnnCfg
			cfg.Seed = s
			return core.Fit(tr, cfg)
		}},
	}, nil
}

// CompareCell fits and scores one (family, fold) cell of the comparison
// grid against the pre-shuffled dataset and its fold split: idx/k selects
// the family, idx%k the held-out fold, and the fit seed is seed+fold —
// exactly the cell the local MapWorker loop computes.
func CompareCell(shuffled *workload.Dataset, folds [][]int, fams []Family, k int, seed uint64, idx int) (float64, error) {
	if idx < 0 || idx >= len(fams)*k {
		return 0, fmt.Errorf("jobs: compare cell %d out of range [0,%d)", idx, len(fams)*k)
	}
	fi, f := idx/k, idx%k
	trainSet, valSet := shuffled.TrainValidation(folds, f)
	model, err := fams[fi].Fit(trainSet, seed+uint64(f))
	if err != nil {
		return 0, fmt.Errorf("%s fold %d: %w", fams[fi].Name, f+1, err)
	}
	ev, err := core.Evaluate(model, valSet)
	if err != nil {
		return 0, err
	}
	return stats.MeanSkipNaN(ev.HMRE), nil
}

// Per-kind wire configs (Spec.Config payloads). Primitives only: the
// worker re-derives core.Config and surface.Slice from these the same way
// the CLI does from its flags.

// CrossvalConfig parameterizes a KindCrossval job; NumTasks is k.
type CrossvalConfig struct {
	K      int    `json:"k"`
	Hidden string `json:"hidden"`
	Epochs int    `json:"epochs"`
}

// CompareConfig parameterizes a KindCompare job; NumTasks is families×k.
type CompareConfig struct {
	K      int    `json:"k"`
	Hidden string `json:"hidden"`
	Epochs int    `json:"epochs"`
}

// SurfaceConfig parameterizes a KindSurface job; NumTasks is len(XValues)
// (one task per grid row).
type SurfaceConfig struct {
	Fixed   dist.Floats `json:"fixed"`
	XIndex  int         `json:"xi"`
	YIndex  int         `json:"yi"`
	XValues dist.Floats `json:"xvalues"`
	YValues dist.Floats `json:"yvalues"`
	Output  int         `json:"output"`
}

// ImportanceConfig parameterizes a KindImportance job; NumTasks is the
// dataset's feature count.
type ImportanceConfig struct {
	Repeats int `json:"repeats"`
}

// SelectConfig parameterizes a KindSelect job; NumTasks is len(Candidates).
type SelectConfig struct {
	K          int     `json:"k"`
	Epochs     int     `json:"epochs"`
	Candidates [][]int `json:"candidates"`
}

// Per-kind result payloads. Every float crosses the wire as dist.Float(s)
// so NaN-valued HMREs and exact bits survive JSON.

// TrialResult is one cross-validation fold's payload.
type TrialResult struct {
	Errors dist.Floats `json:"errors"`
}

// CellResult is one compare cell's payload.
type CellResult struct {
	Mean dist.Float `json:"mean"`
}

// RowResult is one surface grid row's payload.
type RowResult struct {
	Z dist.Floats `json:"z"`
}

// ScoresResult is one feature's permutation-importance payload.
type ScoresResult struct {
	Scores dist.Floats `json:"scores"`
}

// CandidateResult is one topology candidate's payload.
type CandidateResult struct {
	Error  dist.Float `json:"error"`
	Params int        `json:"params"`
}

func decodeConfig(spec dist.Spec, out any) error {
	if err := json.Unmarshal(spec.Config, out); err != nil {
		return fmt.Errorf("jobs: decoding %s config: %w", spec.Kind, err)
	}
	return nil
}

// Runners maps every job kind to its task implementation — what a worker
// process passes to dist.WorkerConfig.Runners.
func Runners() map[string]dist.Runner {
	return map[string]dist.Runner{
		KindCrossval:   runCrossval,
		KindCompare:    runCompare,
		KindSurface:    runSurface,
		KindImportance: runImportance,
		KindSelect:     runSelect,
	}
}

// NewWorker is dist.NewWorker with this package's runners pre-wired (a
// caller-supplied table still wins, so tests can add toy kinds).
func NewWorker(cfg dist.WorkerConfig) (*dist.Worker, error) {
	if cfg.Runners == nil {
		cfg.Runners = Runners()
	}
	return dist.NewWorker(cfg)
}

func runCrossval(ctx context.Context, env dist.Env, spec dist.Spec, index int) (json.RawMessage, error) {
	var cfg CrossvalConfig
	if err := decodeConfig(spec, &cfg); err != nil {
		return nil, err
	}
	ds, err := sharedCache.dataset(ctx, env, spec)
	if err != nil {
		return nil, err
	}
	mc, err := ModelConfig(cfg.Hidden, cfg.Epochs, spec.Seed)
	if err != nil {
		return nil, err
	}
	trial, err := core.CrossValidateFold(ds, mc, cfg.K, spec.Seed, index)
	if err != nil {
		return nil, err
	}
	// Emit the same "fold" event a local cross-validation's fold slot
	// emits, field for field, so merged cluster traces read like local
	// ones. Every field derives from (spec, index) — deterministic.
	if tr := obs.TraceFromContext(ctx); tr.Enabled() {
		fields := make([]obs.Field, 0, 3+len(trial.Errors))
		fields = append(fields,
			obs.Int("fold", index),
			obs.String("stop_reason", string(trial.Model.TrainResult.Reason)),
			obs.Float("mean_hmre", stats.MeanSkipNaN(trial.Errors)))
		for j, e := range trial.Errors {
			fields = append(fields, obs.Float("hmre_"+ds.TargetNames[j], e))
		}
		tr.Emit("fold", fields...)
	}
	return json.Marshal(TrialResult{Errors: dist.Floats(trial.Errors)})
}

func runCompare(ctx context.Context, env dist.Env, spec dist.Spec, index int) (json.RawMessage, error) {
	var cfg CompareConfig
	if err := decodeConfig(spec, &cfg); err != nil {
		return nil, err
	}
	ds, err := sharedCache.dataset(ctx, env, spec)
	if err != nil {
		return nil, err
	}
	fams, err := CompareFamilies(cfg.Hidden, cfg.Epochs)
	if err != nil {
		return nil, err
	}
	shuffled := ds.Clone()
	shuffled.Shuffle(rng.New(spec.Seed))
	folds, err := shuffled.KFold(cfg.K)
	if err != nil {
		return nil, err
	}
	mean, err := CompareCell(shuffled, folds, fams, cfg.K, spec.Seed, index)
	if err != nil {
		return nil, err
	}
	if tr := obs.TraceFromContext(ctx); tr.Enabled() {
		tr.Emit("compare_cell",
			obs.String("family", fams[index/cfg.K].Name),
			obs.Int("fold", index%cfg.K),
			obs.Float("mean_hmre", mean))
	}
	return json.Marshal(CellResult{Mean: dist.Float(mean)})
}

func runSurface(ctx context.Context, env dist.Env, spec dist.Spec, index int) (json.RawMessage, error) {
	var cfg SurfaceConfig
	if err := decodeConfig(spec, &cfg); err != nil {
		return nil, err
	}
	model, err := sharedCache.model(ctx, env, spec)
	if err != nil {
		return nil, err
	}
	row, err := probeSurfaceRow(model, cfg, index)
	if err != nil {
		return nil, err
	}
	if tr := obs.TraceFromContext(ctx); tr.Enabled() {
		tr.Emit("surface_row",
			obs.Int("row", index),
			obs.Float("x", cfg.XValues[index]),
			obs.Int("cols", len(row)))
	}
	return json.Marshal(RowResult{Z: dist.Floats(row)})
}

func runImportance(ctx context.Context, env dist.Env, spec dist.Spec, index int) (json.RawMessage, error) {
	var cfg ImportanceConfig
	if err := decodeConfig(spec, &cfg); err != nil {
		return nil, err
	}
	model, ds, base, actual, err := sharedCache.baseline(ctx, env, spec)
	if err != nil {
		return nil, err
	}
	scores := scoreImportanceFeature(model, ds, base, actual, index, cfg.Repeats, spec.Seed)
	if tr := obs.TraceFromContext(ctx); tr.Enabled() {
		tr.Emit("importance_feature",
			obs.Int("feature", index),
			obs.String("name", ds.FeatureNames[index]),
			obs.Float("mean_score", stats.MeanSkipNaN(scores)))
	}
	return json.Marshal(ScoresResult{Scores: dist.Floats(scores)})
}

func runSelect(ctx context.Context, env dist.Env, spec dist.Spec, index int) (json.RawMessage, error) {
	var cfg SelectConfig
	if err := decodeConfig(spec, &cfg); err != nil {
		return nil, err
	}
	if index < 0 || index >= len(cfg.Candidates) {
		return nil, fmt.Errorf("jobs: candidate %d out of range [0,%d)", index, len(cfg.Candidates))
	}
	ds, err := sharedCache.dataset(ctx, env, spec)
	if err != nil {
		return nil, err
	}
	base, err := ModelConfig("16", cfg.Epochs, spec.Seed)
	if err != nil {
		return nil, err
	}
	cand, err := core.ScoreTopology(ds, base, cfg.Candidates[index], cfg.K, spec.Seed)
	if err != nil {
		return nil, err
	}
	if tr := obs.TraceFromContext(ctx); tr.Enabled() {
		tr.Emit("select_candidate",
			obs.Int("candidate", index),
			obs.Float("error", cand.Error),
			obs.Int("params", cand.Params))
	}
	return json.Marshal(CandidateResult{Error: dist.Float(cand.Error), Params: cand.Params})
}
