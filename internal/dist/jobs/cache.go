package jobs

import (
	"context"
	"fmt"
	"os"
	"sync"

	"nnwc/internal/core"
	"nnwc/internal/dist"
	"nnwc/internal/sensitivity"
	"nnwc/internal/surface"
	"nnwc/internal/workload"
)

// artifactCache memoizes the parsed form of fetched artifacts per process:
// every task in a lease (and every lease of a job) shares one dataset and
// one model. Content addressing makes entries immutable, so the cache
// never invalidates; consumers must Clone before mutating (the fold and
// cell units already do).
type artifactCache struct {
	mu        sync.Mutex
	datasets  map[string]*workload.Dataset
	models    map[string]*core.NNModel
	baselines map[string]*importanceBaseline
}

// importanceBaseline caches sensitivity.Baseline per (model, dataset)
// pair — every feature task rescoring against it recomputes nothing.
type importanceBaseline struct {
	base   []float64
	actual [][]float64
}

var sharedCache = &artifactCache{
	datasets:  make(map[string]*workload.Dataset),
	models:    make(map[string]*core.NNModel),
	baselines: make(map[string]*importanceBaseline),
}

func artifactSHA(spec dist.Spec, role string) (string, error) {
	sha, ok := spec.Artifacts[role]
	if !ok || sha == "" {
		return "", fmt.Errorf("jobs: %s job ships no %q artifact", spec.Kind, role)
	}
	return sha, nil
}

// dataset resolves and parses the job's dataset artifact, memoized by
// content hash. The returned dataset is shared — clone before mutating.
// mu guards only the map: the artifact fetch and CSV parse run unlocked
// so a slow resolution cannot serialize unrelated tasks, and the
// publish re-checks the map so every caller shares the first-stored
// parse (racing parsers discard their copy).
func (c *artifactCache) dataset(ctx context.Context, env dist.Env, spec dist.Spec) (*workload.Dataset, error) {
	sha, err := artifactSHA(spec, RoleDataset)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if ds, ok := c.datasets[sha]; ok {
		c.mu.Unlock()
		return ds, nil
	}
	c.mu.Unlock()
	path, err := env.ArtifactPath(ctx, sha)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := workload.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("jobs: parsing dataset %s: %w", sha, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.datasets[sha]; ok {
		return existing, nil
	}
	c.datasets[sha] = ds
	return ds, nil
}

// model resolves and parses the job's model artifact, memoized by content
// hash. Models are read-only through Predict, so sharing is safe. Locking
// follows dataset: map access under mu, fetch and parse outside it.
func (c *artifactCache) model(ctx context.Context, env dist.Env, spec dist.Spec) (*core.NNModel, error) {
	sha, err := artifactSHA(spec, RoleModel)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if m, ok := c.models[sha]; ok {
		c.mu.Unlock()
		return m, nil
	}
	c.mu.Unlock()
	path, err := env.ArtifactPath(ctx, sha)
	if err != nil {
		return nil, err
	}
	m, err := core.LoadModelFile(path)
	if err != nil {
		return nil, fmt.Errorf("jobs: loading model %s: %w", sha, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.models[sha]; ok {
		return existing, nil
	}
	c.models[sha] = m
	return m, nil
}

// baseline resolves the importance job's model and dataset and computes
// (or recalls) the unpermuted-RMSE baseline every feature task scores
// against. Keyed by the (model, dataset) hash pair, so a job's N feature
// tasks run one baseline pass, not N.
func (c *artifactCache) baseline(ctx context.Context, env dist.Env, spec dist.Spec) (*core.NNModel, *workload.Dataset, []float64, [][]float64, error) {
	model, err := c.model(ctx, env, spec)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	ds, err := c.dataset(ctx, env, spec)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	key := spec.Artifacts[RoleModel] + "/" + spec.Artifacts[RoleDataset]
	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.baselines[key]; ok {
		return model, ds, b.base, b.actual, nil
	}
	base, actual, err := sensitivity.Baseline(model, ds)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	c.baselines[key] = &importanceBaseline{base: base, actual: actual}
	return model, ds, base, actual, nil
}

// probeSurfaceRow reconstructs the surface slice from the wire config and
// evaluates grid row `index` — the same row EvaluateTraced would fill.
func probeSurfaceRow(model *core.NNModel, cfg SurfaceConfig, index int) ([]float64, error) {
	sl := surface.Slice{
		Fixed:   cfg.Fixed,
		XIndex:  cfg.XIndex,
		YIndex:  cfg.YIndex,
		XValues: cfg.XValues,
		YValues: cfg.YValues,
		Output:  cfg.Output,
	}
	if err := sl.Validate(model.InputDim(), model.OutputDim()); err != nil {
		return nil, err
	}
	return surface.ProbeRow(model, sl, model.InputDim(), index)
}

// scoreImportanceFeature scores one feature with the same options the
// local PermutationImportance loop derives from the CLI flags.
func scoreImportanceFeature(model *core.NNModel, ds *workload.Dataset, base []float64, actual [][]float64, index, repeats int, seed uint64) []float64 {
	return sensitivity.ScoreFeature(model, ds, base, actual, index, sensitivity.Options{Repeats: repeats, Seed: seed})
}
