package dist

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"

	"nnwc/internal/obs"
)

// ClusterTraceFileName is the merged cluster trace's conventional name
// inside a run directory (`-trace` runs default their coordinator's
// cluster trace here; `nnwc runs timeline` looks for it).
const ClusterTraceFileName = "cluster-trace.jsonl"

// clusterRecorder accumulates the material of the merged cluster trace
// while a job runs: the coordinator-side ops narrative (lease grants and
// reassignments — wall-clock events, dropped wholesale by
// canonicalization) and each task's worker-shipped event block. All
// mutation happens under the coordinator's mu.
//
// The written trace has a fixed deterministic skeleton:
//
//	cluster_job header → ops narrative → task blocks in index order → cluster_done
//
// Worker attribution, wall times, lease IDs and the job ID live only in
// the obs volatile keys, and the ops events are obs volatile event
// types, so obs.CanonicalizeJSONL reduces the trace to the same bytes at
// any worker count and under any lease interleaving — the property the
// multi-process determinism tests pin.
type clusterRecorder struct {
	ops        bytes.Buffer
	tr         *obs.Trace
	taskEvents []string
}

func newClusterRecorder(numTasks int) *clusterRecorder {
	r := &clusterRecorder{taskEvents: make([]string, numTasks)}
	r.tr = obs.NewTrace(obs.NewWriterSink(&r.ops))
	return r
}

// leaseGranted records one lease grant in the ops narrative.
func (r *clusterRecorder) leaseGranted(worker string, lo, hi int, leaseID uint64) {
	r.tr.Emit("dist_lease",
		obs.String("worker", worker),
		obs.Int("lo", lo),
		obs.Int("hi", hi),
		obs.Int("lease", int(leaseID)))
}

// reassigned records one expiry sweep that requeued tasks.
func (r *clusterRecorder) reassigned(tasks, leases int) {
	r.tr.Emit("dist_reassign",
		obs.Int("tasks", tasks),
		obs.Int("leases", leases))
}

// taskResolved stores a task's worker-shipped event block. First write
// wins, same as the result store: a late duplicate from a reclaimed
// lease carries byte-identical deterministic content anyway.
func (r *clusterRecorder) taskResolved(index int, events string) {
	r.taskEvents[index] = events
}

// write renders the merged trace to path atomically (temp + rename, so a
// crash mid-write never leaves a torn trace next to a manifest).
func (r *clusterRecorder) write(path string, spec Spec, fingerprint string, failed int) error {
	var out bytes.Buffer
	head := obs.NewTrace(obs.NewWriterSink(&out))
	head.Emit("cluster_job",
		obs.String("job", spec.JobID),
		obs.String("kind", spec.Kind),
		obs.Int("tasks", spec.NumTasks),
		obs.Int("seed", int(spec.Seed)),
		obs.String("fingerprint", fingerprint))
	out.Write(r.ops.Bytes())
	for _, ev := range r.taskEvents {
		if ev == "" {
			continue
		}
		out.WriteString(ev)
		if !strings.HasSuffix(ev, "\n") {
			out.WriteByte('\n')
		}
	}
	head.Emit("cluster_done",
		obs.Int("tasks", spec.NumTasks),
		obs.Int("failed", failed))
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cluster-trace-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(out.Bytes()); err != nil {
		_ = tmp.Close() // the write error is the one worth returning
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
