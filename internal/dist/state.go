package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// StateFileName is the journal's conventional name inside a run directory
// (`-trace` runs default their `-dist-state` here, and `nnwc runs show`
// looks for it to report distributed progress).
const StateFileName = "dist-state.jsonl"

// The journal is JSONL: one header line identifying the job, then one
// line per completed task, appended as results arrive. A coordinator
// restarted on the same journal (matching fingerprint) preloads those
// results and only leases out what is missing — resumable runs. A torn
// final line (crash mid-append) is ignored.
type stateHeader struct {
	JobID       string `json:"job_id"`
	Kind        string `json:"kind"`
	NumTasks    int    `json:"num_tasks"`
	Fingerprint string `json:"fingerprint"`
}

type stateEntry struct {
	Index   int             `json:"index"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Error   string          `json:"error,omitempty"`
	// Events is the task's worker-shipped obs event block (JSONL),
	// journaled only when the coordinator is merging a cluster trace so a
	// resumed run still writes a complete one.
	Events string `json:"events,omitempty"`
}

// readState loads a journal, verifying it belongs to the spec with the
// given fingerprint. A missing file is (nil, nil): a fresh run.
func readState(path, fingerprint string) ([]stateEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, nil // empty file: treat as fresh
	}
	var hdr stateHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("dist: state %s: bad header: %w", path, err)
	}
	if hdr.Fingerprint != fingerprint {
		return nil, fmt.Errorf("dist: state %s belongs to a different job (fingerprint %.12s, want %.12s) — delete it or point -dist-state elsewhere",
			path, hdr.Fingerprint, fingerprint)
	}
	var entries []stateEntry
	for sc.Scan() {
		var e stateEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			break // torn tail from a crash mid-append; everything before it counts
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}

// stateWriter appends entries to the journal, creating it (with header)
// when absent.
type stateWriter struct {
	f *os.File
}

func openStateWriter(path string, hdr stateHeader, fresh bool) (*stateWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if fresh {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	if fresh {
		line, err := json.Marshal(hdr)
		if err == nil {
			_, err = f.Write(append(line, '\n'))
		}
		if err != nil {
			_ = f.Close() // the header write error is the one worth returning
			return nil, err
		}
	}
	return &stateWriter{f: f}, nil
}

func (w *stateWriter) append(e stateEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = w.f.Write(append(line, '\n'))
	return err
}

func (w *stateWriter) close() error { return w.f.Close() }

// StateSummary is what `nnwc runs show` reports about a dist journal.
type StateSummary struct {
	JobID string
	Kind  string
	Progress
}

// ReadStateSummary summarizes a journal without needing its spec: job
// identity plus completed/failed/total counts (duplicate lines, possible
// across a crash-resume boundary, count once).
func ReadStateSummary(path string) (*StateSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("dist: state %s is empty", path)
	}
	var hdr stateHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("dist: state %s: bad header: %w", path, err)
	}
	sum := &StateSummary{JobID: hdr.JobID, Kind: hdr.Kind, Progress: Progress{Total: hdr.NumTasks}}
	seen := make(map[int]bool)
	for sc.Scan() {
		var e stateEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			break
		}
		if seen[e.Index] {
			continue
		}
		seen[e.Index] = true
		if e.Error != "" {
			sum.Failed++
		} else {
			sum.Completed++
		}
	}
	return sum, sc.Err()
}
