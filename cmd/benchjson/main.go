// Command benchjson benchmarks the parallel experiment plane and emits a
// machine-readable JSON report (BENCH_experiments.json). It measures the
// three hot paths the scheduler parallelizes — k-fold cross-validation,
// ensemble training, and surface-grid evaluation — at each requested
// worker count, then derives speedups relative to workers=1.
//
// Usage:
//
//	benchjson [-out BENCH_experiments.json] [-workers 1,4] [-quick]
//
// The default worker set is {1, 4, NumCPU} deduplicated, so a single run
// records both the serial baseline and the parallel gain on the host. All
// benchmarked paths are deterministic: every worker count produces
// bit-identical results, which this command re-verifies before timing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"nnwc/internal/core"
	"nnwc/internal/dist"
	"nnwc/internal/dist/jobs"
	"nnwc/internal/rng"
	"nnwc/internal/stats"
	"nnwc/internal/surface"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// entry is one benchmark measurement at one worker count.
type entry struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	Speedup     float64 `json:"speedup_vs_serial"`
}

type report struct {
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Quick      bool    `json:"quick"`
	Entries    []entry `json:"entries"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_experiments.json", "output JSON path")
		quick   = flag.Bool("quick", false, "smaller dataset and training budget (CI smoke)")
		workers = flag.String("workers", "", "comma-separated worker counts (default: 1,4,NumCPU deduplicated)")
	)
	flag.Parse()

	counts, err := workerCounts(*workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}

	samples, epochs := 160, 600
	if *quick {
		samples, epochs = 60, 120
	}
	ds := syntheticDataset(samples, 7)
	cfg := benchConfig(epochs)

	if err := verifyDeterminism(ds, cfg, counts); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: determinism check failed:", err)
		os.Exit(1)
	}

	model, err := core.Fit(ds, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sl := benchSlice()

	// The distributed entries ship the dataset as a content-addressed CSV
	// artifact over loopback HTTP, exactly as `nnwc crossval -coordinator`
	// does. WriteCSV prints shortest-round-trip decimals, so the workers
	// reload the same bits the in-process benchmarks train on.
	tmpDir, err := os.MkdirTemp("", "benchjson-dist-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmpDir)
	csvPath := filepath.Join(tmpDir, "bench.csv")
	cacheDir := filepath.Join(tmpDir, "cache")
	if err := writeDatasetCSV(ds, csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := verifyDistParity(ds, csvPath, cacheDir, epochs); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: distributed parity check failed:", err)
		os.Exit(1)
	}

	rep := report{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Quick: *quick}
	benches := []struct {
		name string
		run  func(w int) func(b *testing.B)
	}{
		{"crossval_k5", func(w int) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.CrossValidateWorkers(ds, cfg, 5, 42, w); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"ensemble_n5", func(w int) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.FitEnsembleWorkers(ds, cfg, 5, w); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		{"surface_grid", func(w int) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := surface.EvaluateWorkers(model, sl, model.InputDim(), model.OutputDim(), w); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
		// Coordinator + w workers over loopback HTTP; here "workers" is the
		// process-equivalent worker count, not a scheduler width. The epoch
		// budget matches the CLI path (early stopping enabled), so compare
		// these entries with each other, not with crossval_k5.
		{"dist_crossval_k5", func(w int) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := distCrossval(csvPath, cacheDir, w, epochs); err != nil {
						b.Fatal(err)
					}
				}
			}
		}},
	}

	for _, bench := range benches {
		var serial float64
		for _, w := range counts {
			r := testing.Benchmark(bench.run(w))
			e := entry{
				Name:        bench.name,
				Workers:     w,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			}
			if w == 1 {
				serial = float64(r.NsPerOp())
			}
			if serial > 0 && r.NsPerOp() > 0 {
				e.Speedup = round2(serial / float64(r.NsPerOp()))
			}
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("%-14s workers=%-3d %12d ns/op %10d B/op %8d allocs/op  x%.2f\n",
				bench.name, w, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Speedup)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d entries)\n", *out, len(rep.Entries))
}

// workerCounts parses the -workers list, defaulting to {1, 4, NumCPU}
// deduplicated and sorted with 1 always first (it is the baseline the
// speedups divide by).
func workerCounts(spec string) ([]int, error) {
	set := map[int]bool{1: true}
	if spec == "" {
		set[4] = true
		set[runtime.NumCPU()] = true
	} else {
		for _, part := range strings.Split(spec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad -workers entry %q", part)
			}
			set[n] = true
		}
	}
	counts := make([]int, 0, len(set))
	for n := range set {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	return counts, nil
}

// benchConfig trains for a fixed epoch budget: TargetLoss 0 disables early
// stopping so every fold and member costs the same, keeping the benchmark's
// work per op independent of convergence luck.
func benchConfig(epochs int) core.Config {
	tc := train.DefaultConfig()
	tc.MaxEpochs = epochs
	tc.TargetLoss = 0
	return core.Config{Hidden: []int{10}, Train: &tc, Seed: 1}
}

// syntheticDataset samples the same smooth non-linear 2→2 function the
// core tests learn, avoiding the three-tier simulator's cost so the
// benchmark isolates the training and evaluation planes.
func syntheticDataset(n int, seed uint64) *workload.Dataset {
	src := rng.New(seed)
	ds := workload.NewDataset([]string{"a", "b"}, []string{"u", "v"})
	for i := 0; i < n; i++ {
		a, b := src.Uniform(-2, 2), src.Uniform(-2, 2)
		ds.MustAppend(workload.Sample{
			X: []float64{a, b},
			Y: []float64{10 + 3*a*a - b, 5 + math.Sin(a) + 2*b},
		})
	}
	return ds
}

func benchSlice() surface.Slice {
	return surface.Slice{
		Fixed:   []float64{0, 0},
		XIndex:  0,
		YIndex:  1,
		XValues: surface.Linspace(-2, 2, 48),
		YValues: surface.Linspace(-2, 2, 48),
		Output:  0,
	}
}

// verifyDeterminism confirms the scheduler's core guarantee before timing:
// cross-validation averages are bit-identical at every benchmarked worker
// count.
func verifyDeterminism(ds *workload.Dataset, cfg core.Config, counts []int) error {
	ref, err := core.CrossValidateWorkers(ds, cfg, 5, 42, 1)
	if err != nil {
		return err
	}
	for _, w := range counts[1:] {
		got, err := core.CrossValidateWorkers(ds, cfg, 5, 42, w)
		if err != nil {
			return err
		}
		for j := range ref.Averages {
			if !stats.ExactEqual(got.Averages[j], ref.Averages[j]) {
				return fmt.Errorf("workers=%d average[%d] = %v, workers=1 gave %v", w, j, got.Averages[j], ref.Averages[j])
			}
		}
	}
	return nil
}

func writeDatasetCSV(ds *workload.Dataset, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ds.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// distCrossval runs one distributed cross-validation: a loopback
// coordinator plus n in-process workers pulling leases over real HTTP —
// the same protocol path `nnwc crossval -coordinator/-worker` exercises
// across machines.
func distCrossval(csvPath, cacheDir string, n, epochs int) (*core.CVResult, error) {
	opt := jobs.Options{
		Addr:            "127.0.0.1:0",
		JobID:           "benchjson",
		LeaseSize:       1,
		LingerAfterDone: 50 * time.Millisecond,
		OnStart: func(addr string) {
			for i := 0; i < n; i++ {
				w, err := jobs.NewWorker(dist.WorkerConfig{
					Coordinator: addr,
					CacheDir:    cacheDir,
					Parallelism: 1,
					BackoffMin:  2 * time.Millisecond,
					BackoffMax:  20 * time.Millisecond,
					WaitForJob:  10 * time.Second,
					GiveUp:      10 * time.Second,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchjson: worker:", err)
					os.Exit(1)
				}
				w.Start(context.Background())
			}
		},
	}
	cv, _, err := jobs.CoordinateCrossval(context.Background(), opt, csvPath, 5, "10", epochs, 42)
	return cv, err
}

// verifyDistParity confirms the distribution plane's core guarantee before
// timing it: a coordinator + 2 workers land on the exact bits the local
// path computes for the same CLI-equivalent configuration.
func verifyDistParity(ds *workload.Dataset, csvPath, cacheDir string, epochs int) error {
	cfg, err := jobs.ModelConfig("10", epochs, 1)
	if err != nil {
		return err
	}
	ref, err := core.CrossValidateWorkers(ds, cfg, 5, 42, 1)
	if err != nil {
		return err
	}
	got, err := distCrossval(csvPath, cacheDir, 2, epochs)
	if err != nil {
		return err
	}
	for j := range ref.Averages {
		if !stats.ExactEqual(got.Averages[j], ref.Averages[j]) {
			return fmt.Errorf("dist average[%d] = %v, local gave %v", j, got.Averages[j], ref.Averages[j])
		}
	}
	return nil
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
