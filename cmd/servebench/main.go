// Command servebench benchmarks the prediction server and emits a
// machine-readable JSON report (BENCH_serve.json). It trains a small model,
// persists it, and measures two layers:
//
//   - http scenarios: real requests over a loopback listener, single-request
//     (MaxBatch=1) vs coalesced, at 1 and -clients concurrent clients
//     (default max(32, 2*GOMAXPROCS)) — requests/sec plus client-observed
//     p50/p99 latency.
//   - inproc scenarios: producers submitting straight into the coalescer
//     (no HTTP stack), isolating what micro-batching itself buys — one
//     channel rendezvous, pool acquisition, and forward-call setup per
//     batch instead of per request.
//
// The headline coalesced_speedup fields compare coalesced vs single-request
// throughput at full client concurrency for each layer.
//
// Usage:
//
//	servebench [-out BENCH_serve.json] [-dur 2s] [-quick]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"nnwc/internal/core"
	"nnwc/internal/serve"
	"nnwc/internal/stats"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

type scenario struct {
	Name     string  `json:"name"`
	Layer    string  `json:"layer"` // "http" | "inproc"
	Coalesce bool    `json:"coalesce"`
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"requests_per_sec"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
}

type report struct {
	NumCPU                 int        `json:"num_cpu"`
	GoMaxProcs             int        `json:"gomaxprocs"`
	Quick                  bool       `json:"quick"`
	Scenarios              []scenario `json:"scenarios"`
	CoalescedSpeedupHTTP   float64    `json:"coalesced_speedup_http"`
	CoalescedSpeedupInproc float64    `json:"coalesced_speedup_inproc"`
}

func main() {
	multiDefault := 2 * runtime.GOMAXPROCS(0)
	if multiDefault < 32 {
		// Coalescing pays off under concurrent load, which is a property of
		// the arrival rate, not the core count: even on one core, batching N
		// queued rows into one forward call amortizes the per-call dispatch,
		// workspace, and bookkeeping cost. Drive enough concurrency to
		// actually fill batches, also on small machines.
		multiDefault = 32
	}
	var (
		out     = flag.String("out", "BENCH_serve.json", "output JSON path")
		dur     = flag.Duration("dur", 2*time.Second, "measurement duration per scenario")
		quick   = flag.Bool("quick", false, "short measurement (CI smoke)")
		clients = flag.Int("clients", multiDefault, "client count for the concurrent scenarios")
	)
	flag.Parse()
	if *quick {
		*dur = 300 * time.Millisecond
	}

	dir, err := os.MkdirTemp("", "servebench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.json")
	if err := trainModel(modelPath); err != nil {
		fatal(err)
	}

	multi := *clients
	clientCounts := []int{1, multi}
	if multi <= 1 {
		clientCounts = []int{1}
	}

	rep := report{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Quick: *quick}
	for _, coalesce := range []bool{false, true} {
		for _, clients := range clientCounts {
			sc, err := runHTTPScenario(modelPath, coalesce, clients, *dur)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-24s %9.0f req/s   p50 %6.3fms   p99 %6.3fms\n", sc.Name, sc.RPS, sc.P50ms, sc.P99ms)
			rep.Scenarios = append(rep.Scenarios, sc)
		}
	}
	for _, coalesce := range []bool{false, true} {
		for _, clients := range clientCounts {
			sc, err := runInprocScenario(modelPath, coalesce, clients, *dur)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-24s %9.0f req/s   p50 %6.3fms   p99 %6.3fms\n", sc.Name, sc.RPS, sc.P50ms, sc.P99ms)
			rep.Scenarios = append(rep.Scenarios, sc)
		}
	}

	rep.CoalescedSpeedupHTTP = speedup(rep.Scenarios, "http", multi)
	rep.CoalescedSpeedupInproc = speedup(rep.Scenarios, "inproc", multi)
	fmt.Printf("coalesced speedup at %d clients: http %.2fx, inproc %.2fx\n",
		multi, rep.CoalescedSpeedupHTTP, rep.CoalescedSpeedupInproc)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "servebench:", err)
	os.Exit(1)
}

// trainModel fits and persists the benchmark model: 4→5 like the paper's
// workload, trained briefly — prediction cost, not quality, matters here.
func trainModel(path string) error {
	ds := workload.NewDataset(
		[]string{"rate", "default_threads", "mfg_threads", "web_threads"},
		[]string{"y1", "y2", "y3", "y4", "y5"})
	for i := 0; i < 96; i++ {
		a, b := float64(i%8), float64(i/8)
		ds.MustAppend(workload.Sample{
			X: []float64{480 + 10*a, 2 + b, 8 + a, 8 + b},
			Y: []float64{50 + a*b, 40 + a, 30 + b, 60 + a - b, 400 + 5*a},
		})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 200
	model, err := core.Fit(ds, core.Config{Hidden: []int{16}, Train: &tc, Seed: 1})
	if err != nil {
		return err
	}
	return model.SaveFile(path)
}

func serverConfig(modelPath string, coalesce bool) serve.Config {
	cfg := serve.Config{
		Addr:      "127.0.0.1:0",
		ModelPath: modelPath,
		Workers:   runtime.GOMAXPROCS(0),
	}
	if coalesce {
		cfg.MaxBatch = 64
		cfg.MaxWait = 500 * time.Microsecond
	} else {
		cfg.MaxBatch = 1
		cfg.MaxWait = 0
	}
	return cfg
}

func scenarioName(layer string, coalesce bool, clients int) string {
	mode := "single"
	if coalesce {
		mode = "coalesced"
	}
	return fmt.Sprintf("%s_%s_c%d", layer, mode, clients)
}

// runHTTPScenario measures real loopback requests against a fresh server.
func runHTTPScenario(modelPath string, coalesce bool, clients int, dur time.Duration) (scenario, error) {
	srv, err := serve.New(serverConfig(modelPath, coalesce))
	if err != nil {
		return scenario{}, err
	}
	if err := srv.Start(); err != nil {
		return scenario{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := "http://" + srv.Addr() + "/predict"
	body := []byte(`{"x":[560,8,16,18]}`)

	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}

	// Warm up connections and the JIT-ish paths.
	for i := 0; i < 2*clients; i++ {
		if err := post(client, url, body); err != nil {
			return scenario{}, err
		}
	}

	latencies := make([][]float64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		//lint:waive sched -- load-generator client goroutine; the harness measures latency, results carry no model output
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if err := post(client, url, body); err != nil {
					errCh <- err
					return
				}
				latencies[c] = append(latencies[c], time.Since(t0).Seconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return scenario{}, err
	default:
	}
	return summarize(scenarioName("http", coalesce, clients), "http", coalesce, clients, latencies, elapsed), nil
}

// runInprocScenario measures the coalescer + batched-inference path alone:
// producers call the same entry point the HTTP handler uses, without the
// HTTP stack, isolating the micro-batching gain.
func runInprocScenario(modelPath string, coalesce bool, clients int, dur time.Duration) (scenario, error) {
	srv, err := serve.New(serverConfig(modelPath, coalesce))
	if err != nil {
		return scenario{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	ctx := context.Background()
	x := []float64{560, 8, 16, 18}
	// Warm up.
	for i := 0; i < 2*clients; i++ {
		if _, err := srv.Predict(ctx, x); err != nil {
			return scenario{}, err
		}
	}

	latencies := make([][]float64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		//lint:waive sched -- load-generator client goroutine; the harness measures latency, results carry no model output
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, err := srv.Predict(ctx, x); err != nil {
					errCh <- err
					return
				}
				latencies[c] = append(latencies[c], time.Since(t0).Seconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return scenario{}, err
	default:
	}
	return summarize(scenarioName("inproc", coalesce, clients), "inproc", coalesce, clients, latencies, elapsed), nil
}

func summarize(name, layer string, coalesce bool, clients int, latencies [][]float64, elapsed time.Duration) scenario {
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sc := scenario{
		Name:     name,
		Layer:    layer,
		Coalesce: coalesce,
		Clients:  clients,
		Requests: len(all),
		Seconds:  elapsed.Seconds(),
	}
	if len(all) > 0 {
		sc.RPS = float64(len(all)) / elapsed.Seconds()
		sc.P50ms = stats.Quantile(all, 0.50) * 1e3
		sc.P99ms = stats.Quantile(all, 0.99) * 1e3
	}
	return sc
}

// speedup returns coalesced RPS / single RPS at the highest client count
// for the given layer.
func speedup(scs []scenario, layer string, clients int) float64 {
	var single, coalesced float64
	for _, sc := range scs {
		if sc.Layer != layer || sc.Clients != clients {
			continue
		}
		if sc.Coalesce {
			coalesced = sc.RPS
		} else {
			single = sc.RPS
		}
	}
	if stats.ExactZero(single) {
		return 0
	}
	return coalesced / single
}

func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	// Drain so the connection is reused.
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return nil
}
