// Command servebench benchmarks the prediction server and emits a
// machine-readable JSON report (BENCH_serve.json). It trains a small model,
// persists it, and measures two layers:
//
//   - http scenarios: real requests over a loopback listener, single-request
//     (MaxBatch=1) vs coalesced, at 1 and -clients concurrent clients
//     (default max(32, 2*GOMAXPROCS)) — requests/sec plus client-observed
//     p50/p99 latency.
//
//   - inproc scenarios: producers submitting straight into the coalescer
//     (no HTTP stack), isolating what micro-batching itself buys — one
//     channel rendezvous, pool acquisition, and forward-call setup per
//     batch instead of per request.
//
//   - fleet scenarios: eight tenants over three distinct network shapes
//     served concurrently by -clients round-robin clients, measured twice —
//     cross-tenant batching (tenants sharing a shape fill batches together)
//     vs per-model batching (every model coalesces alone). Per-tenant rows
//     land in the report alongside the aggregates.
//
// The headline coalesced_speedup fields compare coalesced vs single-request
// throughput at full client concurrency for each layer; fleet_speedup
// compares cross-tenant vs per-model batching for the fleet.
//
// Usage:
//
//	servebench [-out BENCH_serve.json] [-dur 2s] [-quick]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"nnwc/internal/core"
	"nnwc/internal/serve"
	"nnwc/internal/stats"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

type scenario struct {
	Name     string  `json:"name"`
	Layer    string  `json:"layer"` // "http" | "inproc" | "fleet"
	Coalesce bool    `json:"coalesce"`
	Batching string  `json:"batching,omitempty"` // fleet rows: "cross_tenant" | "per_model"
	Tenant   string  `json:"tenant,omitempty"`   // fleet per-tenant rows
	Clients  int     `json:"clients"`
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"requests_per_sec"`
	P50ms    float64 `json:"p50_ms"`
	P99ms    float64 `json:"p99_ms"`
}

type report struct {
	NumCPU                 int        `json:"num_cpu"`
	GoMaxProcs             int        `json:"gomaxprocs"`
	Quick                  bool       `json:"quick"`
	FleetTenants           int        `json:"fleet_tenants"`
	FleetShapes            int        `json:"fleet_shapes"`
	Scenarios              []scenario `json:"scenarios"`
	CoalescedSpeedupHTTP   float64    `json:"coalesced_speedup_http"`
	CoalescedSpeedupInproc float64    `json:"coalesced_speedup_inproc"`
	FleetSpeedup           float64    `json:"fleet_speedup"`
}

func main() {
	multiDefault := 2 * runtime.GOMAXPROCS(0)
	if multiDefault < 32 {
		// Coalescing pays off under concurrent load, which is a property of
		// the arrival rate, not the core count: even on one core, batching N
		// queued rows into one forward call amortizes the per-call dispatch,
		// workspace, and bookkeeping cost. Drive enough concurrency to
		// actually fill batches, also on small machines.
		multiDefault = 32
	}
	var (
		out     = flag.String("out", "BENCH_serve.json", "output JSON path")
		dur     = flag.Duration("dur", 2*time.Second, "measurement duration per scenario")
		quick   = flag.Bool("quick", false, "short measurement (CI smoke)")
		clients = flag.Int("clients", multiDefault, "client count for the concurrent scenarios")
	)
	flag.Parse()
	if *quick {
		*dur = 300 * time.Millisecond
	}

	dir, err := os.MkdirTemp("", "servebench")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	modelPath := filepath.Join(dir, "model.json")
	if err := trainModel(modelPath); err != nil {
		fatal(err)
	}

	multi := *clients
	clientCounts := []int{1, multi}
	if multi <= 1 {
		clientCounts = []int{1}
	}

	rep := report{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0), Quick: *quick}
	for _, coalesce := range []bool{false, true} {
		for _, clients := range clientCounts {
			sc, err := runHTTPScenario(modelPath, coalesce, clients, *dur)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-24s %9.0f req/s   p50 %6.3fms   p99 %6.3fms\n", sc.Name, sc.RPS, sc.P50ms, sc.P99ms)
			rep.Scenarios = append(rep.Scenarios, sc)
		}
	}
	for _, coalesce := range []bool{false, true} {
		for _, clients := range clientCounts {
			sc, err := runInprocScenario(modelPath, coalesce, clients, *dur)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-24s %9.0f req/s   p50 %6.3fms   p99 %6.3fms\n", sc.Name, sc.RPS, sc.P50ms, sc.P99ms)
			rep.Scenarios = append(rep.Scenarios, sc)
		}
	}

	// Fleet: eight tenants over three shapes, cross-tenant vs per-model
	// batching at full client concurrency.
	fleetModels, shapes, err := trainFleetModels(dir)
	if err != nil {
		fatal(err)
	}
	rep.FleetTenants, rep.FleetShapes = len(fleetModels), shapes
	var fleetRPS [2]float64 // [per_model, cross_tenant] aggregate RPS
	for i, perModel := range []bool{true, false} {
		scs, err := runFleetScenario(fleetModels, perModel, multi, *dur)
		if err != nil {
			fatal(err)
		}
		for _, sc := range scs {
			if sc.Tenant == "" {
				fmt.Printf("%-24s %9.0f req/s   p50 %6.3fms   p99 %6.3fms\n", sc.Name, sc.RPS, sc.P50ms, sc.P99ms)
				fleetRPS[i] = sc.RPS
			}
			rep.Scenarios = append(rep.Scenarios, sc)
		}
	}

	rep.CoalescedSpeedupHTTP = speedup(rep.Scenarios, "http", multi)
	rep.CoalescedSpeedupInproc = speedup(rep.Scenarios, "inproc", multi)
	if !stats.ExactZero(fleetRPS[0]) {
		rep.FleetSpeedup = fleetRPS[1] / fleetRPS[0]
	}
	fmt.Printf("coalesced speedup at %d clients: http %.2fx, inproc %.2fx\n",
		multi, rep.CoalescedSpeedupHTTP, rep.CoalescedSpeedupInproc)
	fmt.Printf("cross-tenant vs per-model batching at %d clients over %d tenants: %.2fx\n",
		multi, len(fleetModels), rep.FleetSpeedup)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "servebench:", err)
	os.Exit(1)
}

// trainModel fits and persists the benchmark model: 4→5 like the paper's
// workload, trained briefly — prediction cost, not quality, matters here.
func trainModel(path string) error {
	ds := workload.NewDataset(
		[]string{"rate", "default_threads", "mfg_threads", "web_threads"},
		[]string{"y1", "y2", "y3", "y4", "y5"})
	for i := 0; i < 96; i++ {
		a, b := float64(i%8), float64(i/8)
		ds.MustAppend(workload.Sample{
			X: []float64{480 + 10*a, 2 + b, 8 + a, 8 + b},
			Y: []float64{50 + a*b, 40 + a, 30 + b, 60 + a - b, 400 + 5*a},
		})
	}
	tc := train.DefaultConfig()
	tc.MaxEpochs = 200
	model, err := core.Fit(ds, core.Config{Hidden: []int{16}, Train: &tc, Seed: 1})
	if err != nil {
		return err
	}
	return model.SaveFile(path)
}

func serverConfig(modelPath string, coalesce bool) serve.Config {
	cfg := serve.Config{
		Addr:      "127.0.0.1:0",
		ModelPath: modelPath,
		Workers:   runtime.GOMAXPROCS(0),
	}
	if coalesce {
		cfg.MaxBatch = 64
		cfg.MaxWait = 500 * time.Microsecond
	} else {
		cfg.MaxBatch = 1
		cfg.MaxWait = 0
	}
	return cfg
}

func scenarioName(layer string, coalesce bool, clients int) string {
	mode := "single"
	if coalesce {
		mode = "coalesced"
	}
	return fmt.Sprintf("%s_%s_c%d", layer, mode, clients)
}

// runHTTPScenario measures real loopback requests against a fresh server.
func runHTTPScenario(modelPath string, coalesce bool, clients int, dur time.Duration) (scenario, error) {
	srv, err := serve.New(serverConfig(modelPath, coalesce))
	if err != nil {
		return scenario{}, err
	}
	if err := srv.Start(); err != nil {
		return scenario{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := "http://" + srv.Addr() + "/predict"
	body := []byte(`{"x":[560,8,16,18]}`)

	transport := &http.Transport{MaxIdleConnsPerHost: clients}
	client := &http.Client{Transport: transport}

	// Warm up connections and the JIT-ish paths.
	for i := 0; i < 2*clients; i++ {
		if err := post(client, url, body); err != nil {
			return scenario{}, err
		}
	}

	latencies := make([][]float64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		//lint:waive sched -- load-generator client goroutine; the harness measures latency, results carry no model output
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if err := post(client, url, body); err != nil {
					errCh <- err
					return
				}
				latencies[c] = append(latencies[c], time.Since(t0).Seconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return scenario{}, err
	default:
	}
	return summarize(scenarioName("http", coalesce, clients), "http", coalesce, clients, latencies, elapsed), nil
}

// runInprocScenario measures the coalescer + batched-inference path alone:
// producers call the same entry point the HTTP handler uses, without the
// HTTP stack, isolating the micro-batching gain.
func runInprocScenario(modelPath string, coalesce bool, clients int, dur time.Duration) (scenario, error) {
	srv, err := serve.New(serverConfig(modelPath, coalesce))
	if err != nil {
		return scenario{}, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	ctx := context.Background()
	x := []float64{560, 8, 16, 18}
	// Warm up.
	for i := 0; i < 2*clients; i++ {
		if _, err := srv.Predict(ctx, x); err != nil {
			return scenario{}, err
		}
	}

	latencies := make([][]float64, clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		//lint:waive sched -- load-generator client goroutine; the harness measures latency, results carry no model output
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, err := srv.Predict(ctx, x); err != nil {
					errCh <- err
					return
				}
				latencies[c] = append(latencies[c], time.Since(t0).Seconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return scenario{}, err
	default:
	}
	return summarize(scenarioName("inproc", coalesce, clients), "inproc", coalesce, clients, latencies, elapsed), nil
}

// fleetTenantCount tenants spread over fleetHidden's distinct topologies.
const fleetTenantCount = 8

var fleetHidden = [][]int{{16}, {8}, {24}}

// trainFleetModels fits one artifact per distinct shape and assigns the
// fleet's tenants to them round-robin: w0,w3,w6 share shape 4-16-5, and so
// on. Shape — not tenant identity — is what the cross-tenant batcher keys
// on, so several lightly loaded tenants can fill one batch domain.
func trainFleetModels(dir string) (map[string]string, int, error) {
	ds := workload.NewDataset(
		[]string{"rate", "default_threads", "mfg_threads", "web_threads"},
		[]string{"y1", "y2", "y3", "y4", "y5"})
	for i := 0; i < 96; i++ {
		a, b := float64(i%8), float64(i/8)
		ds.MustAppend(workload.Sample{
			X: []float64{480 + 10*a, 2 + b, 8 + a, 8 + b},
			Y: []float64{50 + a*b, 40 + a, 30 + b, 60 + a - b, 400 + 5*a},
		})
	}
	artifacts := make([]string, len(fleetHidden))
	for i, hidden := range fleetHidden {
		tc := train.DefaultConfig()
		tc.MaxEpochs = 200
		model, err := core.Fit(ds, core.Config{Hidden: hidden, Train: &tc, Seed: uint64(i + 1)})
		if err != nil {
			return nil, 0, err
		}
		artifacts[i] = filepath.Join(dir, fmt.Sprintf("fleet-%d.json", i))
		if err := model.SaveFile(artifacts[i]); err != nil {
			return nil, 0, err
		}
	}
	models := make(map[string]string, fleetTenantCount)
	for t := 0; t < fleetTenantCount; t++ {
		models[fmt.Sprintf("w%d", t)] = artifacts[t%len(fleetHidden)]
	}
	return models, len(fleetHidden), nil
}

// runFleetScenario serves the whole fleet from one process and drives it
// with clients that round-robin across tenants, so at any instant several
// tenants of each shape have rows in flight. Returns the aggregate row
// first, then one row per tenant.
func runFleetScenario(models map[string]string, perModel bool, clients int, dur time.Duration) ([]scenario, error) {
	srv, err := serve.New(serve.Config{
		Models:           models,
		Workers:          runtime.GOMAXPROCS(0),
		MaxBatch:         64,
		MaxWait:          500 * time.Microsecond,
		WarmModels:       2 * fleetTenantCount,
		PerModelBatching: perModel,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	tenants := make([]string, 0, len(models))
	for t := range models {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)

	ctx := context.Background()
	x := []float64{560, 8, 16, 18}
	for _, tenant := range tenants { // warm every batch domain
		if _, err := srv.PredictRef(ctx, tenant, x); err != nil {
			return nil, err
		}
	}

	// latencies[c][t] collects client c's observations for tenant t —
	// per-client storage, merged after the run, so the hot loop is
	// contention-free.
	latencies := make([][][]float64, clients)
	for c := range latencies {
		latencies[c] = make([][]float64, len(tenants))
	}
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		//lint:waive sched -- load-generator client goroutine; the harness measures latency, results carry no model output
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(deadline); i++ {
				t := i % len(tenants)
				t0 := time.Now()
				if _, err := srv.PredictRef(ctx, tenants[t], x); err != nil {
					errCh <- err
					return
				}
				latencies[c][t] = append(latencies[c][t], time.Since(t0).Seconds())
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	mode := "cross_tenant"
	if perModel {
		mode = "per_model"
	}
	name := fmt.Sprintf("fleet_%s_c%d", mode, clients)
	var all [][]float64
	out := make([]scenario, 0, len(tenants)+1)
	out = append(out, scenario{}) // aggregate placeholder, filled below
	for t, tenant := range tenants {
		var rows [][]float64
		for c := range latencies {
			rows = append(rows, latencies[c][t])
		}
		all = append(all, rows...)
		sc := summarize(name+"_"+tenant, "fleet", true, clients, rows, elapsed)
		sc.Batching, sc.Tenant = mode, tenant
		out = append(out, sc)
	}
	agg := summarize(name, "fleet", true, clients, all, elapsed)
	agg.Batching = mode
	out[0] = agg
	return out, nil
}

func summarize(name, layer string, coalesce bool, clients int, latencies [][]float64, elapsed time.Duration) scenario {
	var all []float64
	for _, l := range latencies {
		all = append(all, l...)
	}
	sc := scenario{
		Name:     name,
		Layer:    layer,
		Coalesce: coalesce,
		Clients:  clients,
		Requests: len(all),
		Seconds:  elapsed.Seconds(),
	}
	if len(all) > 0 {
		sc.RPS = float64(len(all)) / elapsed.Seconds()
		sc.P50ms = stats.Quantile(all, 0.50) * 1e3
		sc.P99ms = stats.Quantile(all, 0.99) * 1e3
	}
	return sc
}

// speedup returns coalesced RPS / single RPS at the highest client count
// for the given layer.
func speedup(scs []scenario, layer string, clients int) float64 {
	var single, coalesced float64
	for _, sc := range scs {
		if sc.Layer != layer || sc.Clients != clients {
			continue
		}
		if sc.Coalesce {
			coalesced = sc.RPS
		} else {
			single = sc.RPS
		}
	}
	if stats.ExactZero(single) {
		return 0
	}
	return coalesced / single
}

func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	// Drain so the connection is reused.
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return nil
}
