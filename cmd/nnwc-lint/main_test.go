package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureNames lists every self-test package under
// internal/analysis/testdata/src, in the order the golden file expects.
var fixtureNames = []string{
	"ctxflow", "determinism", "errcheckresults", "floateq", "golifecycle",
	"hotpath", "lockhold", "maprange", "pooldiscipline", "sched", "waiver",
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

func fixtureDirs(t *testing.T) []string {
	t.Helper()
	root := moduleRoot(t)
	var dirs []string
	for _, name := range fixtureNames {
		dirs = append(dirs, filepath.Join(root, "internal", "analysis", "testdata", "src", name))
	}
	return dirs
}

// TestExitCleanOnRepoTip pins exit code 0: the whole module under the
// checked-in lint.conf must be finding-free, or CI's `make lint` gate
// would fail.
func TestExitCleanOnRepoTip(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is slow; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != exitClean {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitClean, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestExitFindingsOnFixtures pins exit code 1: every self-test fixture
// must produce findings under the empty policy.
func TestExitFindingsOnFixtures(t *testing.T) {
	conf := filepath.Join("testdata", "fixtures.conf")
	for i, dir := range fixtureDirs(t) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-conf", conf, dir}, &stdout, &stderr)
		if code != exitFindings {
			t.Errorf("fixture %s: exit = %d, want %d\nstderr:\n%s", fixtureNames[i], code, exitFindings, stderr.String())
		}
		if stdout.Len() == 0 {
			t.Errorf("fixture %s: no diagnostics printed", fixtureNames[i])
		}
	}
}

// TestUsageErrors pins exit code 2 for operator mistakes.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-rules", "nosuchrule", "./..."},
		{"-conf", filepath.Join("testdata", "no-such-file.conf"), "./..."},
		{filepath.Join("testdata")}, // directory without Go files
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitUsage {
			t.Errorf("run(%q) exit = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != exitClean {
		t.Fatalf("-list exit = %d, want %d", code, exitClean)
	}
	for _, rule := range []string{
		"determinism", "sched", "maprange", "hotpath", "floateq",
		"ctxflow", "lockhold", "goroutine-lifecycle", "pooldiscipline", "errcheck-results",
	} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing rule %q:\n%s", rule, stdout.String())
		}
	}
}

// TestBuildTagExcludedFiles pins that a file gated behind an unsatisfied
// //go:build constraint is skipped entirely: testdata/src/tagged holds a
// deliberately type-broken excluded.go next to a clean tagged.go, and the
// package must lint clean.
func TestBuildTagExcludedFiles(t *testing.T) {
	conf := filepath.Join("testdata", "fixtures.conf")
	dir := filepath.Join("testdata", "src", "tagged")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-conf", conf, dir}, &stdout, &stderr); code != exitClean {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitClean, stdout.String(), stderr.String())
	}
}

// TestLoadFailuresGolden pins the failure-path diagnostics: a package
// that does not type-check and a malformed lint.conf must both exit 2
// with positioned errors. Regenerate with -update.
func TestLoadFailuresGolden(t *testing.T) {
	root := moduleRoot(t)
	var out bytes.Buffer

	var stdout, stderr bytes.Buffer
	code := run([]string{"-conf", filepath.Join("testdata", "fixtures.conf"), filepath.Join("testdata", "src", "typeerr")}, &stdout, &stderr)
	fmt.Fprintf(&out, "-- type error (exit %d) --\n%s", code, stderr.String())
	if code != exitUsage {
		t.Errorf("type-error fixture: exit = %d, want %d", code, exitUsage)
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-conf", filepath.Join("testdata", "malformed.conf"), filepath.Join("testdata", "src", "tagged")}, &stdout, &stderr)
	fmt.Fprintf(&out, "-- malformed conf (exit %d) --\n%s", code, stderr.String())
	if code != exitUsage {
		t.Errorf("malformed conf: exit = %d, want %d", code, exitUsage)
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-baseline", filepath.Join("testdata", "no-such-baseline.json"), filepath.Join("testdata", "src", "tagged")}, &stdout, &stderr)
	if code != exitUsage {
		t.Errorf("missing baseline: exit = %d, want %d", code, exitUsage)
	}

	// Absolute checkout paths would make the golden file machine-specific.
	got := strings.ReplaceAll(out.String(), root+string(filepath.Separator), "")
	goldenPath := filepath.Join("testdata", "failures.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("failure diagnostics drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONReport pins the -json schema: every finding carries rule, file,
// line, col, and message; waived findings are present with waived=true
// and the //lint:waive justification instead of being dropped.
func TestJSONReport(t *testing.T) {
	conf := filepath.Join("testdata", "fixtures.conf")
	dir := filepath.Join(moduleRoot(t), "internal", "analysis", "testdata", "src", "sched")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-conf", conf, "-json", dir}, &stdout, &stderr); code != exitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitFindings, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json produced no findings for the sched fixture")
	}
	waived := 0
	for _, f := range findings {
		if f.Rule == "" || f.File == "" || f.Line == 0 || f.Col == 0 || f.Message == "" {
			t.Errorf("finding with missing field: %+v", f)
		}
		if filepath.IsAbs(f.File) || strings.Contains(f.File, "\\") {
			t.Errorf("file path not slash-relative to module root: %q", f.File)
		}
		if f.Waived {
			waived++
			if f.Justification == "" {
				t.Errorf("waived finding without justification: %+v", f)
			}
		}
	}
	if waived == 0 {
		t.Error("sched fixture has a used waiver, but no waived finding in the JSON report")
	}
}

// TestBaselineRoundTrip pins the findings-baseline workflow: writing a
// baseline captures the current findings, and a rerun against it is
// clean — while the JSON report still shows the findings as baselined.
func TestBaselineRoundTrip(t *testing.T) {
	conf := filepath.Join("testdata", "fixtures.conf")
	dir := filepath.Join(moduleRoot(t), "internal", "analysis", "testdata", "src", "sched")
	base := filepath.Join(t.TempDir(), "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-conf", conf, "-write-baseline", base, dir}, &stdout, &stderr); code != exitClean {
		t.Fatalf("-write-baseline exit = %d, want %d\nstderr:\n%s", code, exitClean, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-conf", conf, "-baseline", base, dir}, &stdout, &stderr); code != exitClean {
		t.Fatalf("baselined rerun exit = %d, want %d\nstdout:\n%s", code, exitClean, stdout.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("baselined rerun printed findings:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-conf", conf, "-baseline", base, "-json", dir}, &stdout, &stderr); code != exitClean {
		t.Fatalf("baselined -json exit = %d, want %d", code, exitClean)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatal(err)
	}
	baselined := 0
	for _, f := range findings {
		if f.Baselined {
			baselined++
		}
	}
	if baselined == 0 {
		t.Error("baselined -json report marks no finding as baselined")
	}
}

// TestGoldenDiagnostics pins the exact diagnostic stream — file:line:col,
// rule tags, messages, and ordering — across all fixtures. Regenerate
// with: go test ./cmd/nnwc-lint -run TestGoldenDiagnostics -update
func TestGoldenDiagnostics(t *testing.T) {
	conf := filepath.Join("testdata", "fixtures.conf")
	args := append([]string{"-conf", conf}, fixtureDirs(t)...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != exitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitFindings, stderr.String())
	}
	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := stdout.String(); got != string(want) {
		t.Errorf("diagnostic format drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
