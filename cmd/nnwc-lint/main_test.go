package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureNames lists every self-test package under
// internal/analysis/testdata/src, in the order the golden file expects.
var fixtureNames = []string{"determinism", "floateq", "hotpath", "maprange", "sched", "waiver"}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}

func fixtureDirs(t *testing.T) []string {
	t.Helper()
	root := moduleRoot(t)
	var dirs []string
	for _, name := range fixtureNames {
		dirs = append(dirs, filepath.Join(root, "internal", "analysis", "testdata", "src", name))
	}
	return dirs
}

// TestExitCleanOnRepoTip pins exit code 0: the whole module under the
// checked-in lint.conf must be finding-free, or CI's `make lint` gate
// would fail.
func TestExitCleanOnRepoTip(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis is slow; skipped in -short")
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != exitClean {
		t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, exitClean, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestExitFindingsOnFixtures pins exit code 1: every self-test fixture
// must produce findings under the empty policy.
func TestExitFindingsOnFixtures(t *testing.T) {
	conf := filepath.Join("testdata", "fixtures.conf")
	for i, dir := range fixtureDirs(t) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-conf", conf, dir}, &stdout, &stderr)
		if code != exitFindings {
			t.Errorf("fixture %s: exit = %d, want %d\nstderr:\n%s", fixtureNames[i], code, exitFindings, stderr.String())
		}
		if stdout.Len() == 0 {
			t.Errorf("fixture %s: no diagnostics printed", fixtureNames[i])
		}
	}
}

// TestUsageErrors pins exit code 2 for operator mistakes.
func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-rules", "nosuchrule", "./..."},
		{"-conf", filepath.Join("testdata", "no-such-file.conf"), "./..."},
		{filepath.Join("testdata")}, // directory without Go files
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitUsage {
			t.Errorf("run(%q) exit = %d, want %d", args, code, exitUsage)
		}
	}
}

func TestListRules(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != exitClean {
		t.Fatalf("-list exit = %d, want %d", code, exitClean)
	}
	for _, rule := range []string{"determinism", "sched", "maprange", "hotpath", "floateq"} {
		if !strings.Contains(stdout.String(), rule) {
			t.Errorf("-list output missing rule %q:\n%s", rule, stdout.String())
		}
	}
}

// TestGoldenDiagnostics pins the exact diagnostic stream — file:line:col,
// rule tags, messages, and ordering — across all fixtures. Regenerate
// with: go test ./cmd/nnwc-lint -run TestGoldenDiagnostics -update
func TestGoldenDiagnostics(t *testing.T) {
	conf := filepath.Join("testdata", "fixtures.conf")
	args := append([]string{"-conf", conf}, fixtureDirs(t)...)
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != exitFindings {
		t.Fatalf("exit = %d, want %d\nstderr:\n%s", code, exitFindings, stderr.String())
	}
	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, stdout.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := stdout.String(); got != string(want) {
		t.Errorf("diagnostic format drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
