// Package typeerr is a driver fixture that deliberately fails
// type-checking, so the loader's positioned diagnostics (every broken
// line, not just the first) can be golden-tested. It is only loaded by
// explicit path; ./... skips testdata directories.
package typeerr

func mismatch() int {
	var s string = 42
	return undefinedCall(s)
}
