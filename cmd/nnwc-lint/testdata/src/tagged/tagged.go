// Package tagged is a driver fixture: its sibling file excluded.go is
// gated behind a //go:build constraint that the host never satisfies,
// and must not poison type-checking of this package.
package tagged

func Add(a, b int) int { return a + b }
