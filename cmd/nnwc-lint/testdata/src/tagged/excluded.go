//go:build ignore

// This file would fail type-checking if it were ever loaded; the build
// constraint above excludes it, and the loader must honor that instead
// of reporting these deliberate errors.
package tagged

var broken int = "build-tag-excluded files must not be type-checked"

func alsoBroken() { undefinedCall() }
