// Command nnwc-lint runs the repo's static-analysis suite (DESIGN.md
// §11) over Go packages and reports findings as
// "file:line:col: [rule] message" lines, with file paths relative to the
// module root so output is stable across checkouts.
//
// Usage:
//
//	nnwc-lint [-conf lint.conf] [-rules r1,r2] [packages...]
//
// Packages default to ./... (the whole module, testdata excluded).
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"nnwc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nnwc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	confPath := fs.String("conf", "", "policy file (default: lint.conf at the module root, if present)")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nnwc-lint [-conf lint.conf] [-rules r1,r2] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}

	policy, err := loadPolicy(*confPath, loader.RootDir)
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}

	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "nnwc-lint: no packages matched", strings.Join(patterns, " "))
		return exitUsage
	}

	found := false
	for _, pkg := range pkgs {
		for _, d := range analysis.Run(pkg, analyzers, policy) {
			found = true
			if rel, err := filepath.Rel(loader.RootDir, d.Pos.Filename); err == nil {
				d.Pos.Filename = filepath.ToSlash(rel)
			}
			fmt.Fprintln(stdout, d)
		}
	}
	if found {
		return exitFindings
	}
	return exitClean
}

func selectAnalyzers(rules string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a := byName[name]
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func loadPolicy(confPath, rootDir string) (*analysis.Policy, error) {
	if confPath == "" {
		confPath = filepath.Join(rootDir, "lint.conf")
		if _, err := os.Stat(confPath); err != nil {
			return analysis.NewPolicy(), nil
		}
	}
	return analysis.ReadConfFile(confPath)
}
