// Command nnwc-lint runs the repo's static-analysis suite (DESIGN.md
// §11, §16) over Go packages and reports findings as
// "file:line:col: [rule] message" lines, with file paths relative to the
// module root so output is stable across checkouts.
//
// Usage:
//
//	nnwc-lint [-conf lint.conf] [-rules r1,r2] [-json] [-baseline f] [packages...]
//
// Packages default to ./... (the whole module, testdata excluded).
//
// -json emits the findings as a JSON array instead of text. The schema
// is stable: {rule, file, line, col, message, waived, justification,
// baselined}. Unlike the text reporter, the JSON report includes waived
// findings (waived=true plus the //lint:waive justification) so CI
// artifacts expose the full suppression picture.
//
// -baseline reads a findings baseline (see -write-baseline) and fails
// only on findings not recorded there; baselined findings are dropped
// from text output and marked baselined=true in JSON. Baseline entries
// are keyed by rule+file+message — deliberately not line — so unrelated
// edits above a known finding do not churn the baseline.
//
// Exit codes: 0 clean, 1 new findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"nnwc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

const (
	exitClean    = 0
	exitFindings = 1
	exitUsage    = 2
)

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nnwc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	confPath := fs.String("conf", "", "policy file (default: lint.conf at the module root, if present)")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (includes waived findings)")
	baselinePath := fs.String("baseline", "", "accepted-findings file; only findings not in it fail the run")
	writeBaseline := fs.String("write-baseline", "", "write current findings to this baseline file and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: nnwc-lint [-conf lint.conf] [-rules r1,r2] [-json] [-baseline f] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return exitClean
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}

	policy, err := loadPolicy(*confPath, loader.RootDir)
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}

	baseline, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}

	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "nnwc-lint:", err)
		return exitUsage
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "nnwc-lint: no packages matched", strings.Join(patterns, " "))
		return exitUsage
	}

	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		all = append(all, analysis.RunAll(pkg, analyzers, policy)...)
	}
	for i := range all {
		if rel, err := filepath.Rel(loader.RootDir, all[i].Pos.Filename); err == nil {
			all[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	if *writeBaseline != "" {
		n, err := writeBaselineFile(*writeBaseline, all)
		if err != nil {
			fmt.Fprintln(stderr, "nnwc-lint:", err)
			return exitUsage
		}
		fmt.Fprintf(stderr, "nnwc-lint: wrote %d finding(s) to %s\n", n, *writeBaseline)
		return exitClean
	}

	newFindings := 0
	report := make([]jsonFinding, 0, len(all))
	for _, d := range all {
		f := jsonFinding{
			Rule:          d.Rule,
			File:          d.Pos.Filename,
			Line:          d.Pos.Line,
			Col:           d.Pos.Column,
			Message:       d.Message,
			Waived:        d.Waived,
			Justification: d.Justification,
		}
		if !d.Waived && baseline[baselineKey(d)] {
			f.Baselined = true
		}
		report = append(report, f)
		if !d.Waived && !f.Baselined {
			newFindings++
			if !*jsonOut {
				fmt.Fprintln(stdout, d)
			}
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, "nnwc-lint:", err)
			return exitUsage
		}
	}
	if newFindings > 0 {
		return exitFindings
	}
	return exitClean
}

// jsonFinding is the stable -json record. Field set and names are part
// of the tool's interface (CI artifacts parse them); extend, don't
// rename.
type jsonFinding struct {
	Rule          string `json:"rule"`
	File          string `json:"file"`
	Line          int    `json:"line"`
	Col           int    `json:"col"`
	Message       string `json:"message"`
	Waived        bool   `json:"waived"`
	Justification string `json:"justification,omitempty"`
	Baselined     bool   `json:"baselined,omitempty"`
}

// baselineEntry is one accepted finding. Line is deliberately absent:
// the key is rule+file+message, so edits above a known finding do not
// invalidate the baseline.
type baselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

func baselineKey(d analysis.Diagnostic) string {
	return d.Rule + "\x00" + d.Pos.Filename + "\x00" + d.Message
}

func readBaseline(path string) (map[string]bool, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	keys := make(map[string]bool, len(entries))
	for _, e := range entries {
		keys[e.Rule+"\x00"+e.File+"\x00"+e.Message] = true
	}
	return keys, nil
}

// writeBaselineFile records the active (unwaived) findings, deduplicated
// and sorted, and returns how many entries it wrote.
func writeBaselineFile(path string, diags []analysis.Diagnostic) (int, error) {
	seen := map[string]bool{}
	entries := []baselineEntry{}
	for _, d := range diags {
		if d.Waived {
			continue
		}
		key := baselineKey(d)
		if seen[key] {
			continue
		}
		seen[key] = true
		entries = append(entries, baselineEntry{Rule: d.Rule, File: d.Pos.Filename, Message: d.Message})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return 0, err
	}
	return len(entries), os.WriteFile(path, append(data, '\n'), 0o644)
}

func selectAnalyzers(rules string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a := byName[name]
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q (try -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func loadPolicy(confPath, rootDir string) (*analysis.Policy, error) {
	if confPath == "" {
		confPath = filepath.Join(rootDir, "lint.conf")
		if _, err := os.Stat(confPath); err != nil {
			return analysis.NewPolicy(), nil
		}
	}
	return analysis.ReadConfFile(confPath)
}
