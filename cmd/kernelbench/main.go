// Command kernelbench benchmarks the compute kernels the training and
// serve planes ride — the tiled matmul in internal/mat, the batched
// forward pass in internal/nn (both precisions), and the batched backprop
// in internal/train — and emits a machine-readable JSON report
// (BENCH_kernels.json) so kernel regressions show up in the perf
// trajectory next to BENCH_experiments.json.
//
// Usage:
//
//	kernelbench [-out BENCH_kernels.json] [-quick]
//
// The matmul section reports GFLOP/s per shape (rows×inner×cols, counting
// 2·r·i·c flops per multiply) for the float64 kernel and its float32 twin,
// with the f32 speedup. The forward/backprop sections report ns per op and
// ns per sample at a fixed batch size, and the forward section adds the
// f32-vs-f64 speedup — the number `nnwc serve -f32` buys. See DESIGN.md
// §13 for the schema and the techniques being measured.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"nnwc/internal/mat"
	"nnwc/internal/nn"
	"nnwc/internal/rng"
	"nnwc/internal/train"
)

// matmulEntry is one tiled-matmul measurement: dst = A·Bᵀ + bias with
// A rows×inner and B cols×inner, in both precisions.
type matmulEntry struct {
	Shape      string  `json:"shape"` // "rows x inner x cols"
	Rows       int     `json:"rows"`
	Inner      int     `json:"inner"`
	Cols       int     `json:"cols"`
	NsPerOp    int64   `json:"ns_per_op"`
	GFLOPS     float64 `json:"gflops"`
	F32NsPerOp int64   `json:"f32_ns_per_op"`
	F32GFLOPS  float64 `json:"f32_gflops"`
	F32Speedup float64 `json:"f32_speedup"`
}

// forwardEntry is one batched-forward measurement on an n→hidden→m net.
type forwardEntry struct {
	Net            string  `json:"net"` // "4-16-5"
	Batch          int     `json:"batch"`
	NsPerOp        int64   `json:"ns_per_op"`
	NsPerSample    float64 `json:"ns_per_sample"`
	F32NsPerOp     int64   `json:"f32_ns_per_op"`
	F32NsPerSample float64 `json:"f32_ns_per_sample"`
	F32Speedup     float64 `json:"f32_speedup"`
}

// backpropEntry is one batched-backprop measurement (f64 only — there is
// no float32 training path).
type backpropEntry struct {
	Net         string  `json:"net"`
	Batch       int     `json:"batch"`
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerSample float64 `json:"ns_per_sample"`
}

type report struct {
	GoVersion  string          `json:"go_version"`
	NumCPU     int             `json:"num_cpu"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Quick      bool            `json:"quick"`
	Matmul     []matmulEntry   `json:"matmul"`
	Forward    []forwardEntry  `json:"forward"`
	Backprop   []backpropEntry `json:"backprop"`
}

func main() {
	var (
		out   = flag.String("out", "BENCH_kernels.json", "output JSON path")
		quick = flag.Bool("quick", false, "fewer shapes (CI smoke)")
	)
	flag.Parse()

	shapes := [][3]int{
		{128, 2, 10},  // the experiment plane's batch·features·hidden shape
		{128, 16, 16}, // hidden-layer product at typical batch size
		{256, 32, 32},
		{512, 64, 64}, // cache-blocking starts to matter here
	}
	nets := [][]int{
		{4, 16, 5}, // the paper's TPC-W-sized topology
		{7, 24, 24, 3},
	}
	if *quick {
		shapes = shapes[:2]
		nets = nets[:1]
	}
	const batch = 64

	rep := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}
	for _, s := range shapes {
		rep.Matmul = append(rep.Matmul, benchMatmul(s[0], s[1], s[2]))
	}
	for _, sizes := range nets {
		rep.Forward = append(rep.Forward, benchForward(sizes, batch))
		rep.Backprop = append(rep.Backprop, benchBackprop(sizes, batch))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "kernelbench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d matmul, %d forward, %d backprop entries)\n",
		*out, len(rep.Matmul), len(rep.Forward), len(rep.Backprop))
}

// benchMatmul times dst = A·Bᵀ + bias at rows×inner×cols in both
// precisions and derives GFLOP/s (2·r·i·c flops per product).
func benchMatmul(rows, inner, cols int) matmulEntry {
	src := rng.New(uint64(rows*1000003 + inner*1009 + cols))
	a := randMatrix(src, rows, inner)
	b := randMatrix(src, cols, inner)
	bias := make([]float64, cols)
	for i := range bias {
		bias[i] = src.Uniform(-1, 1)
	}
	var dst mat.Matrix
	r := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			mat.MulTransBiasInto(&dst, a, b, bias)
		}
	})

	a32, b32 := narrow(a), narrow(b)
	bias32 := make([]float32, cols)
	for i := range bias {
		bias32[i] = float32(bias[i])
	}
	var dst32 mat.Matrix32
	r32 := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			mat.MulTransBiasInto32(&dst32, a32, b32, bias32)
		}
	})

	flops := 2 * float64(rows) * float64(inner) * float64(cols)
	e := matmulEntry{
		Shape:      fmt.Sprintf("%dx%dx%d", rows, inner, cols),
		Rows:       rows,
		Inner:      inner,
		Cols:       cols,
		NsPerOp:    r.NsPerOp(),
		GFLOPS:     round3(flops / float64(r.NsPerOp())),
		F32NsPerOp: r32.NsPerOp(),
		F32GFLOPS:  round3(flops / float64(r32.NsPerOp())),
	}
	if r32.NsPerOp() > 0 {
		e.F32Speedup = round3(float64(r.NsPerOp()) / float64(r32.NsPerOp()))
	}
	fmt.Printf("matmul   %-12s %10d ns/op %8.3f GFLOP/s   f32 %10d ns/op %8.3f GFLOP/s  x%.2f\n",
		e.Shape, e.NsPerOp, e.GFLOPS, e.F32NsPerOp, e.F32GFLOPS, e.F32Speedup)
	return e
}

// benchForward times the batched forward pass of a freshly initialized net
// in both precisions.
func benchForward(sizes []int, batch int) forwardEntry {
	net, X := buildNet(sizes, batch)
	var ws nn.BatchWorkspace
	r := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			net.ForwardBatch(X, &ws)
		}
	})

	net32, err := nn.NetworkF32From(net, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kernelbench:", err)
		os.Exit(1)
	}
	X32 := narrow(X)
	var ws32 nn.BatchWorkspace32
	r32 := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			net32.ForwardBatch(X32, &ws32)
		}
	})

	e := forwardEntry{
		Net:            netName(sizes),
		Batch:          batch,
		NsPerOp:        r.NsPerOp(),
		NsPerSample:    round3(float64(r.NsPerOp()) / float64(batch)),
		F32NsPerOp:     r32.NsPerOp(),
		F32NsPerSample: round3(float64(r32.NsPerOp()) / float64(batch)),
	}
	if r32.NsPerOp() > 0 {
		e.F32Speedup = round3(float64(r.NsPerOp()) / float64(r32.NsPerOp()))
	}
	fmt.Printf("forward  %-12s %10d ns/op %8.1f ns/sample  f32 %10d ns/op %8.1f ns/sample  x%.2f\n",
		e.Net, e.NsPerOp, e.NsPerSample, e.F32NsPerOp, e.F32NsPerSample, e.F32Speedup)
	return e
}

// benchBackprop times one full-batch gradient computation.
func benchBackprop(sizes []int, batch int) backpropEntry {
	net, X := buildNet(sizes, batch)
	src := rng.New(99)
	Y := randMatrix(src, batch, sizes[len(sizes)-1])
	var ws train.Workspace
	g := train.NewGradients(net)
	scale := 1.0 / float64(batch)
	r := testing.Benchmark(func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			train.BackpropBatch(net, X, Y, scale, &ws, g)
		}
	})
	e := backpropEntry{
		Net:         netName(sizes),
		Batch:       batch,
		NsPerOp:     r.NsPerOp(),
		NsPerSample: round3(float64(r.NsPerOp()) / float64(batch)),
	}
	fmt.Printf("backprop %-12s %10d ns/op %8.1f ns/sample\n", e.Net, e.NsPerOp, e.NsPerSample)
	return e
}

// buildNet returns an initialized net of the given sizes and a random
// input batch.
func buildNet(sizes []int, batch int) (*nn.Network, *mat.Matrix) {
	net := nn.NewNetwork(sizes, nn.Logistic{Alpha: 1}, nn.Identity{})
	src := rng.New(uint64(7 + len(sizes)))
	nn.XavierInit{}.Init(net, src)
	return net, randMatrix(src, batch, sizes[0])
}

func randMatrix(src *rng.Source, rows, cols int) *mat.Matrix {
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = src.Uniform(-1, 1)
	}
	return m
}

// narrow quantizes a float64 matrix to its float32 twin.
func narrow(m *mat.Matrix) *mat.Matrix32 {
	var out mat.Matrix32
	out.Reshape(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return &out
}

func netName(sizes []int) string {
	parts := make([]string, len(sizes))
	for i, s := range sizes {
		parts[i] = strconv.Itoa(s)
	}
	return strings.Join(parts, "-")
}

func round3(x float64) float64 { return math.Round(x*1000) / 1000 }
