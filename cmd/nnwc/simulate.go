package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nnwc/internal/threetier"
)

// cmdSimulate runs the three-tier simulator once for a single
// configuration and prints the full diagnostic view: the five paper
// indicators, per-class percentiles with batch-means confidence intervals,
// the per-pool wait/service breakdown, and pool utilizations — the deep
// dive an engineer wants after the model has pointed at a configuration.
func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	xStr := fs.String("x", "560,8,16,18", "configuration vector (rate,default,mfg,web)")
	seed := fs.Uint64("seed", 7, "simulation seed")
	warm := fs.Float64("warmup", 20, "simulated warm-up seconds")
	window := fs.Float64("window", 80, "simulated measurement seconds")
	users := fs.Int("users", 0, "closed-loop user count (0 = open loop)")
	think := fs.Float64("think", 0.5, "closed-loop mean think time, seconds")
	asJSON := fs.Bool("json", false, "emit the metrics as JSON instead of the report")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(cmdSimulateRun(obsf, *xStr, *seed, *warm, *window, *users, *think, *asJSON))
}

func cmdSimulateRun(obsf *obsFlags, xStr string, seed uint64, warm, window float64, users int, think float64, asJSONv bool) error {
	asJSON := &asJSONv
	x, err := parseFloats(xStr)
	if err != nil {
		return err
	}
	cfg, err := threetier.ConfigFromVector(x)
	if err != nil {
		return err
	}
	if users > 0 {
		cfg.Mode = threetier.ClosedLoop
		cfg.Users = users
		cfg.ThinkTime = think
	}
	sys := threetier.DefaultSystemParams()
	sys.WarmupTime, sys.MeasureTime = warm, window
	sys.CollectSamples = true

	obsf.setSeed(seed)
	obsf.setConfig("x", xStr)
	m, err := threetier.Run(cfg, sys, seed)
	if err != nil {
		return err
	}
	obsf.metric("effective_tps", m.EffectiveTPS)
	if *asJSON {
		// Strip the bulky raw samples; everything else serializes.
		m.Samples = [threetier.NumClasses][]float64{}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		return enc.Encode(m)
	}

	fmt.Printf("configuration: rate=%g default=%d mfg=%d web=%d (driver: %s)\n",
		cfg.InjectionRate, cfg.DefaultThreads, cfg.MfgThreads, cfg.WebThreads, cfg.Mode)
	fmt.Printf("offered %.1f tx/s, effective %.1f tx/s\n\n", m.OfferedTPS, m.EffectiveTPS)

	fmt.Printf("%-16s %9s %9s %9s %9s %9s %12s %9s\n",
		"class", "mean ms", "p50", "p95", "p99", "±95%CI", "completed", "rejected")
	for c := 0; c < threetier.NumClasses; c++ {
		class := threetier.Class(c)
		line := fmt.Sprintf("%-16s %9.1f", class, m.ResponseTimes[c]*1000)
		if p, err := m.Percentiles(class); err == nil {
			line += fmt.Sprintf(" %9.1f %9.1f %9.1f", p.P50*1000, p.P95*1000, p.P99*1000)
		} else {
			line += fmt.Sprintf(" %9s %9s %9s", "-", "-", "-")
		}
		if ci, err := m.ResponseCI(class, 20); err == nil {
			line += fmt.Sprintf(" %9.2f", ci.HalfWidth*1000)
		} else {
			line += fmt.Sprintf(" %9s", "-")
		}
		line += fmt.Sprintf(" %12d %9d", m.Completed[c], m.Rejected[c])
		fmt.Println(line)
	}

	fmt.Printf("\nper-pool breakdown (wait / hold, ms per transaction):\n")
	fmt.Printf("%-16s", "class")
	for p := 0; p < threetier.NumPools; p++ {
		fmt.Printf(" %16s", threetier.Pool(p))
	}
	fmt.Printf(" %12s\n", "bottleneck")
	for c := 0; c < threetier.NumClasses; c++ {
		fmt.Printf("%-16s", threetier.Class(c))
		for p := 0; p < threetier.NumPools; p++ {
			fmt.Printf("   %6.1f / %5.1f", m.MeanPoolWait[c][p]*1000, m.MeanPoolService[c][p]*1000)
		}
		fmt.Printf(" %12s\n", m.Bottleneck(threetier.Class(c)))
	}

	fmt.Printf("\npool utilization:")
	for p := 0; p < threetier.NumPools; p++ {
		fmt.Printf("  %s=%.0f%%", threetier.Pool(p), m.PoolUtilization[p]*100)
	}
	fmt.Println()
	return nil
}
