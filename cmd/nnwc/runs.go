package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nnwc/internal/dist"
	"nnwc/internal/obs"
	"nnwc/internal/stats"
)

// cmdRuns inspects the run directories that -trace writes: list the
// recorded runs, summarize one run's manifest and trace, or diff the
// provenance and metrics of two runs.
func cmdRuns(args []string) error {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	dir := fs.String("dir", "runs", "base directory holding run subdirectories")
	addr := fs.String("addr", "", "tail a live coordinator at this URL instead of a run's journal")
	interval := fs.Duration("interval", 2*time.Second, "poll interval for runs tail")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage:
  nnwc runs list     [-dir runs]             list recorded runs
  nnwc runs show     [-dir runs] <id>        manifest + trace summary of one run
  nnwc runs diff     [-dir runs] <id> <id>   compare two runs' provenance and metrics
  nnwc runs timeline [-dir runs] <id>        per-worker task timeline from the merged cluster trace
  nnwc runs tail     [-dir runs] <id>        stream distributed progress from the run's journal
  nnwc runs tail     -addr URL               stream live progress from a running coordinator

ids may be unambiguous prefixes of run directory names.`)
		fs.PrintDefaults()
	}
	// Allow both `runs list -dir x` and `runs -dir x list`.
	verb := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		verb, args = args[0], args[1:]
	}
	fs.Parse(args)
	rest := fs.Args()
	if verb == "" && len(rest) > 0 {
		verb, rest = rest[0], rest[1:]
	}
	switch verb {
	case "", "list":
		return runsList(*dir)
	case "show":
		if len(rest) != 1 {
			return fmt.Errorf("runs show needs exactly one run id")
		}
		return runsShow(*dir, rest[0])
	case "diff":
		if len(rest) != 2 {
			return fmt.Errorf("runs diff needs exactly two run ids")
		}
		return runsDiff(*dir, rest[0], rest[1])
	case "timeline":
		if len(rest) != 1 {
			return fmt.Errorf("runs timeline needs exactly one run id")
		}
		return runsTimeline(*dir, rest[0])
	case "tail":
		if *addr == "" && len(rest) != 1 {
			return fmt.Errorf("runs tail needs a run id or -addr URL")
		}
		runID := ""
		if len(rest) == 1 {
			runID = rest[0]
		}
		return runsTail(*dir, runID, *addr, *interval)
	default:
		fs.Usage()
		return fmt.Errorf("unknown runs verb %q", verb)
	}
}

// listRunDirs returns the run directory names under base (those holding a
// manifest or a trace), sorted lexically — which is chronological, because
// run ids embed a UTC timestamp.
func listRunDirs(base string) ([]string, error) {
	entries, err := os.ReadDir(base)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(base, e.Name())
		if _, err := os.Stat(filepath.Join(dir, obs.ManifestFileName)); err == nil {
			out = append(out, e.Name())
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, obs.TraceFileName)); err == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// resolveRun matches id against the run directories: exact name first, then
// a unique prefix.
func resolveRun(base, id string) (string, error) {
	names, err := listRunDirs(base)
	if err != nil {
		return "", err
	}
	var matches []string
	for _, n := range names {
		if n == id {
			return n, nil
		}
		if strings.HasPrefix(n, id) {
			matches = append(matches, n)
		}
	}
	switch len(matches) {
	case 0:
		return "", fmt.Errorf("no run matches %q under %s", id, base)
	case 1:
		return matches[0], nil
	default:
		return "", fmt.Errorf("run id %q is ambiguous: %s", id, strings.Join(matches, ", "))
	}
}

func runsList(base string) error {
	names, err := listRunDirs(base)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		fmt.Printf("no runs under %s (run a subcommand with -trace %s to record one)\n", base, base)
		return nil
	}
	fmt.Printf("%-44s %-10s %10s %-8s\n", "run", "command", "duration", "outcome")
	for _, n := range names {
		m, err := obs.ReadManifest(filepath.Join(base, n, obs.ManifestFileName))
		if err != nil {
			fmt.Printf("%-44s %-10s %10s %-8s\n", n, "?", "?", "no manifest")
			continue
		}
		outcome := m.Outcome
		if outcome == "" {
			outcome = "incomplete"
		}
		fmt.Printf("%-44s %-10s %9.2fs %-8s\n", n, m.Command, m.DurationSec, outcome)
	}
	return nil
}

func runsShow(base, id string) error {
	name, err := resolveRun(base, id)
	if err != nil {
		return err
	}
	dir := filepath.Join(base, name)
	m, err := obs.ReadManifest(filepath.Join(dir, obs.ManifestFileName))
	if err != nil {
		return fmt.Errorf("reading manifest (is the run still in progress?): %w", err)
	}
	fmt.Printf("run:        %s\n", m.RunID)
	fmt.Printf("command:    %s %s\n", m.Command, strings.Join(m.Args, " "))
	fmt.Printf("started:    %s\n", m.Start)
	fmt.Printf("duration:   %.2fs\n", m.DurationSec)
	fmt.Printf("outcome:    %s\n", m.Outcome)
	fmt.Printf("toolchain:  %s", m.GoVersion)
	if m.GitRevision != "" {
		fmt.Printf(" (%s)", m.GitRevision)
	}
	fmt.Println()
	if m.Seed != 0 {
		fmt.Printf("seed:       %d\n", m.Seed)
	}
	if m.Workers != 0 {
		fmt.Printf("workers:    %d\n", m.Workers)
	}
	if m.DatasetPath != "" {
		fmt.Printf("dataset:    %s (sha256 %s)\n", m.DatasetPath, m.DatasetHash)
	}
	if len(m.Models) > 0 {
		fmt.Println("models:")
		for _, ref := range m.Models {
			name := ref.Name
			if ref.Version > 0 {
				// Registry-assigned version: render the fleet reference.
				name = fmt.Sprintf("%s@v%d", ref.Name, ref.Version)
			}
			fmt.Printf("  %-18s %s (sha256 %s)\n", name, ref.Path, ref.SHA256)
		}
	}
	if len(m.Config) > 0 {
		fmt.Println("config:")
		for _, k := range sortedKeys(m.Config) {
			fmt.Printf("  %-18s %v\n", k, m.Config[k])
		}
	}
	if len(m.Metrics) > 0 {
		fmt.Println("metrics:")
		for _, k := range sortedKeys(m.Metrics) {
			fmt.Printf("  %-18s %g\n", k, m.Metrics[k])
		}
	}

	if sum, err := dist.ReadStateSummary(filepath.Join(dir, dist.StateFileName)); err == nil {
		fmt.Printf("dist:       %s job, %d/%d tasks journaled", sum.Kind, sum.Completed+sum.Failed, sum.Total)
		if sum.Failed > 0 {
			fmt.Printf(" (%d failed)", sum.Failed)
		}
		if sum.Completed+sum.Failed < sum.Total {
			fmt.Printf(" — resumable with -dist-state %s", filepath.Join(dir, dist.StateFileName))
		}
		fmt.Println()
	}

	f, err := os.Open(filepath.Join(dir, obs.TraceFileName))
	if err != nil {
		fmt.Println("trace:      (none)")
		return nil
	}
	defer f.Close()
	s, err := obs.SummarizeTrace(f)
	if err != nil {
		return err
	}
	fmt.Printf("trace:      %d events\n", s.Events)
	for _, n := range s.SortedNames() {
		fmt.Printf("  %-18s %d\n", n, s.ByName[n])
	}
	if s.Epochs > 0 {
		fmt.Printf("training:   through epoch %d, train loss %.4g → %.4g\n", s.Epochs, s.FirstLoss, s.FinalLoss)
		if !math.IsNaN(s.FinalVal) {
			fmt.Printf("            final validation loss %.4g\n", s.FinalVal)
		}
	}
	if len(s.StopReasons) > 0 {
		parts := make([]string, 0, len(s.StopReasons))
		for _, r := range sortedKeys(s.StopReasons) {
			parts = append(parts, fmt.Sprintf("%s×%d", r, s.StopReasons[r]))
		}
		fmt.Printf("stops:      %s\n", strings.Join(parts, ", "))
	}
	if len(s.FoldErrors) > 0 {
		folds := make([]int, 0, len(s.FoldErrors))
		for f := range s.FoldErrors {
			folds = append(folds, f)
		}
		sort.Ints(folds)
		fmt.Println("folds (mean HMRE):")
		for _, f := range folds {
			fmt.Printf("  fold %-2d %.2f%%\n", f+1, s.FoldErrors[f]*100)
		}
	}
	if len(s.Spans) > 0 {
		fmt.Println("spans:")
		for _, scope := range s.SortedScopes() {
			t := s.Spans[scope]
			fmt.Printf("  %-18s ×%-4d %9.1fms total\n", scope, t.Count, t.TotalMS)
		}
	}
	return nil
}

func runsDiff(base, idA, idB string) error {
	nameA, err := resolveRun(base, idA)
	if err != nil {
		return err
	}
	nameB, err := resolveRun(base, idB)
	if err != nil {
		return err
	}
	ma, err := obs.ReadManifest(filepath.Join(base, nameA, obs.ManifestFileName))
	if err != nil {
		return err
	}
	mb, err := obs.ReadManifest(filepath.Join(base, nameB, obs.ManifestFileName))
	if err != nil {
		return err
	}
	fmt.Printf("a: %s\nb: %s\n\n", ma.RunID, mb.RunID)
	diffStr := func(label, a, b string) {
		if a == b {
			fmt.Printf("  %-18s %s\n", label, orDash(a))
		} else {
			fmt.Printf("~ %-18s %s → %s\n", label, orDash(a), orDash(b))
		}
	}
	diffStr("command", ma.Command, mb.Command)
	diffStr("args", strings.Join(ma.Args, " "), strings.Join(mb.Args, " "))
	diffStr("go", ma.GoVersion, mb.GoVersion)
	diffStr("revision", ma.GitRevision, mb.GitRevision)
	diffStr("dataset", ma.DatasetPath, mb.DatasetPath)
	diffStr("dataset sha256", ma.DatasetHash, mb.DatasetHash)
	diffStr("seed", fmt.Sprint(ma.Seed), fmt.Sprint(mb.Seed))
	diffStr("outcome", ma.Outcome, mb.Outcome)
	fmt.Printf("  %-18s %.2fs → %.2fs\n", "duration", ma.DurationSec, mb.DurationSec)

	keys := map[string]bool{}
	for k := range ma.Config {
		keys[k] = true
	}
	for k := range mb.Config {
		keys[k] = true
	}
	if len(keys) > 0 {
		fmt.Println("\nconfig:")
		for _, k := range sortedKeys(keys) {
			diffStr(k, fmt.Sprint(ma.Config[k]), fmt.Sprint(mb.Config[k]))
		}
	}

	mkeys := map[string]bool{}
	for k := range ma.Metrics {
		mkeys[k] = true
	}
	for k := range mb.Metrics {
		mkeys[k] = true
	}
	if len(mkeys) > 0 {
		fmt.Println("\nmetrics:")
		for _, k := range sortedKeys(mkeys) {
			va, oka := ma.Metrics[k]
			vb, okb := mb.Metrics[k]
			switch {
			case oka && okb && stats.ExactEqual(va, vb):
				fmt.Printf("  %-18s %g\n", k, va)
			case oka && okb:
				delta := ""
				if !stats.ExactZero(va) {
					delta = fmt.Sprintf(" (%+.2f%%)", (vb-va)/math.Abs(va)*100)
				}
				fmt.Printf("~ %-18s %g → %g%s\n", k, va, vb, delta)
			case oka:
				fmt.Printf("- %-18s %g → (absent)\n", k, va)
			default:
				fmt.Printf("+ %-18s (absent) → %g\n", k, vb)
			}
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
