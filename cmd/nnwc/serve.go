package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"nnwc/internal/serve"
	"nnwc/internal/serve/deploy"
)

// cmdServe runs the production prediction server: load one model (-model)
// or a whole fleet (-models tenant=path,...), answer /predict with
// cross-tenant coalesced batched inference, manage canary deployments on
// the /fleet endpoints, expose health and metrics, hot-reload on SIGHUP or
// POST /-/reload, and drain gracefully on SIGINT/SIGTERM.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "", "single persisted model artifact, served as tenant \"default\"")
	modelsSpec := fs.String("models", "", "fleet spec: tenant=path[,tenant=path...]")
	defaultTenant := fs.String("default-tenant", "", "tenant serving requests that name no model (default: the only tenant, when one is configured)")
	addr := fs.String("addr", ":8080", "listen address")
	maxBatch := fs.Int("max-batch", 64, "max rows coalesced into one forward call (1 disables coalescing)")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "max extra latency spent gathering a batch")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request prediction timeout")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent inference workers per batch domain")
	warm := fs.Int("warm", 8, "max model versions kept loaded in the registry LRU")
	maxInflight := fs.Int("max-inflight", 0, "per-tenant in-flight request budget; beyond it requests shed with 429 (0 = uncapped)")
	latencyBudget := fs.Duration("latency-budget", 0, "per-request latency budget; requests that cannot finish inside it shed with 429 (0 = off)")
	perModel := fs.Bool("per-model-batching", false, "coalesce each model alone instead of across tenants sharing a shape")
	f32 := fs.Bool("f32", false, "serve through the quantized float32 inference kernels (models still train in float64)")
	promoteHMRE := fs.Float64("promote-hmre", 0.10, "auto-promote a canary whose rolling live-traffic HMRE stays at or below this")
	demoteHMRE := fs.Float64("demote-hmre", 0.25, "auto-rollback a live model whose rolling HMRE exceeds this")
	minObs := fs.Int("min-observations", 32, "observations a rolling window needs before the canary policy acts")
	autoPromote := fs.Bool("auto-promote", false, "let /observe traffic drive promotion and rollback automatically")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := obsf.start(args); err != nil {
		return err
	}

	models, err := parseModelsSpec(*modelsSpec)
	if err != nil {
		return obsf.finish(err)
	}
	if *modelPath == "" && len(models) == 0 {
		*modelPath = "model.json" // the pre-fleet default
	}
	cfg := serve.Config{
		Addr:             *addr,
		ModelPath:        *modelPath,
		Models:           models,
		DefaultTenant:    *defaultTenant,
		WarmModels:       *warm,
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		RequestTimeout:   *timeout,
		Workers:          *workers,
		MaxInflight:      *maxInflight,
		LatencyBudget:    *latencyBudget,
		PerModelBatching: *perModel,
		Float32:          *f32,
		Deploy: deploy.Config{
			PromoteHMRE:     *promoteHMRE,
			DemoteHMRE:      *demoteHMRE,
			MinObservations: *minObs,
			AutoPromote:     *autoPromote,
		},
		Trace: obsf.trace(),
	}
	return obsf.finish(cmdServeRun(obsf, cfg, *drain))
}

// parseModelsSpec parses "web=models/web.json,db=models/db.json".
func parseModelsSpec(spec string) (map[string]string, error) {
	if spec == "" {
		return nil, nil
	}
	models := make(map[string]string)
	for _, part := range strings.Split(spec, ",") {
		tenant, path, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || tenant == "" || path == "" {
			return nil, fmt.Errorf("serve: -models entry %q is not tenant=path", part)
		}
		if prev, dup := models[tenant]; dup {
			return nil, fmt.Errorf("serve: tenant %q listed twice (%s and %s)", tenant, prev, path)
		}
		models[tenant] = path
	}
	return models, nil
}

func cmdServeRun(obsf *obsFlags, cfg serve.Config, drainDur time.Duration) error {
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	recordFleet := func() {
		for _, a := range srv.Registry().Artifacts() {
			obsf.addModel(a.Tenant, a.Version, a.Path)
		}
	}
	recordFleet()
	obsf.setWorkers(cfg.Workers)
	obsf.setConfig("addr", srv.Addr())
	tenants := srv.Registry().Tenants()
	sort.Strings(tenants)
	obsf.setConfig("tenants", strings.Join(tenants, ","))
	obsf.infof("nnwc serve: %d model(s) [%s] on http://%s (batch<=%d, wait<=%s, %d workers)\n",
		len(tenants), strings.Join(tenants, ", "), srv.Addr(), cfg.MaxBatch, cfg.MaxWait, cfg.Workers)
	obsf.infof("nnwc serve: SIGHUP reloads every tenant's artifact, SIGINT/SIGTERM drains and exits\n")

	serveErr := make(chan error, 1)
	//lint:waive sched -- single waiter bridging srv.Wait into the shutdown select; no result-path work
	go func() { serveErr <- srv.Wait() }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-serveErr:
			if err == nil {
				return nil // clean close initiated elsewhere
			}
			return fmt.Errorf("serve: listener failed: %w", err)
		case sig := <-sigCh:
			if sig == syscall.SIGHUP {
				if err := srv.Reload(); err != nil {
					fmt.Fprintf(os.Stderr, "nnwc serve: %v (previous models keep serving)\n", err)
				} else {
					recordFleet() // changed bytes became new versions
					fmt.Println("nnwc serve: models reloaded")
				}
				continue
			}
			fmt.Printf("nnwc serve: %s — draining (up to %s)\n", sig, drainDur)
			ctx, cancel := context.WithTimeout(context.Background(), drainDur)
			defer cancel()
			return srv.Shutdown(ctx)
		}
	}
}
