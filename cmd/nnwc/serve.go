package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nnwc/internal/serve"
)

// cmdServe runs the production prediction server: load a persisted model,
// answer /predict with coalesced batched inference, expose health and
// metrics, hot-reload on SIGHUP or POST /-/reload, and drain gracefully on
// SIGINT/SIGTERM.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "persisted model artifact to serve")
	addr := fs.String("addr", ":8080", "listen address")
	maxBatch := fs.Int("max-batch", 64, "max rows coalesced into one forward call (1 disables coalescing)")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "max extra latency spent gathering a batch")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request prediction timeout")
	drain := fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent inference workers")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(cmdServeRun(obsf, *modelPath, *addr, *maxBatch, *maxWait, *timeout, *drain, *workers))
}

func cmdServeRun(obsf *obsFlags, modelPath, addr string, maxBatch int, maxWait, timeout, drainDur time.Duration, workers int) error {
	drain := &drainDur
	srv, err := serve.New(serve.Config{
		Addr:           addr,
		ModelPath:      modelPath,
		MaxBatch:       maxBatch,
		MaxWait:        maxWait,
		RequestTimeout: timeout,
		Workers:        workers,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	obsf.setWorkers(workers)
	obsf.setConfig("model", modelPath)
	obsf.setConfig("addr", srv.Addr())
	obsf.infof("nnwc serve: model %s on http://%s (batch<=%d, wait<=%s, %d workers)\n",
		modelPath, srv.Addr(), maxBatch, maxWait, workers)
	obsf.infof("nnwc serve: SIGHUP reloads the model, SIGINT/SIGTERM drains and exits\n")

	serveErr := make(chan error, 1)
	//lint:waive sched -- single waiter bridging srv.Wait into the shutdown select; no result-path work
	go func() { serveErr <- srv.Wait() }()

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-serveErr:
			return fmt.Errorf("serve: listener failed: %w", err)
		case sig := <-sigCh:
			if sig == syscall.SIGHUP {
				if err := srv.Reload(); err != nil {
					fmt.Fprintf(os.Stderr, "nnwc serve: %v (previous model keeps serving)\n", err)
				} else {
					fmt.Println("nnwc serve: model reloaded")
				}
				continue
			}
			fmt.Printf("nnwc serve: %s — draining (up to %s)\n", sig, *drain)
			ctx, cancel := context.WithTimeout(context.Background(), *drain)
			defer cancel()
			return srv.Shutdown(ctx)
		}
	}
}
