package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"nnwc/internal/core"
	"nnwc/internal/dist/jobs"
	"nnwc/internal/obs"
	"nnwc/internal/plot"
	"nnwc/internal/recommend"
	"nnwc/internal/rng"
	"nnwc/internal/sched"
	"nnwc/internal/surface"
	"nnwc/internal/threetier"
	"nnwc/internal/workload"
)

// workersFlag registers -workers on subcommands with parallel phases
// (fold training, family sweeps, grid evaluation). The value bounds the
// deterministic scheduler's concurrency; results never depend on it.
func workersFlag(fs *flag.FlagSet) *int {
	return fs.Int("workers", runtime.GOMAXPROCS(0), "max concurrent workers for parallel phases (results are identical at any setting)")
}

// parseFloats parses "a,b,c" into floats ("inf" allowed).
func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if strings.EqualFold(p, "inf") {
			out = append(out, math.Inf(1))
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	fs, err := parseFloats(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(fs))
	for i, f := range fs {
		out[i] = int(f)
	}
	return out, nil
}

// parseRange parses "lo:hi:n" into n evenly spaced values.
func parseRange(s string) ([]float64, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("range %q must be lo:hi:n", s)
	}
	lo, err := strconv.ParseFloat(parts[0], 64)
	if err != nil {
		return nil, err
	}
	hi, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(parts[2])
	if err != nil {
		return nil, err
	}
	return surface.Linspace(lo, hi, n), nil
}

func loadDataset(path string) (*workload.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.ReadCSV(f)
}

func loadModel(path string) (*core.NNModel, error) {
	return core.LoadModelFile(path)
}

// fmtPct renders a fractional error as a percentage, or "n/a" when the
// metric is undefined (NaN) — an undefined indicator must be visible, not
// reported as 0% error.
func fmtPct(e float64, width, prec int) string {
	if math.IsNaN(e) {
		return fmt.Sprintf("%*s", width+1, "n/a")
	}
	return fmt.Sprintf("%*.*f%%", width, prec, e*100)
}

// warnUndefined prints which indicators an evaluation skipped, if any.
func warnUndefined(undefined []string) {
	if len(undefined) > 0 {
		fmt.Printf("note: HMRE undefined for %s (e.g. all-zero actuals); skipped in averages\n",
			strings.Join(undefined, ", "))
	}
}

// modelConfig delegates to the jobs package so the local CLI path and a
// distributed worker derive identical configs from identical flag values.
func modelConfig(hidden string, epochs int, seed uint64) (core.Config, error) {
	return jobs.ModelConfig(hidden, epochs, seed)
}

func cmdDatagen(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ExitOnError)
	out := fs.String("out", "data.csv", "output CSV path")
	seed := fs.Uint64("seed", 2006, "simulation seed")
	rates := fs.String("rates", "480,560,640", "injection rates")
	mfg := fs.String("mfg", "8,16,24", "mfg thread counts")
	web := fs.String("web", "8,12,14,16,18,20,24", "web thread counts")
	def := fs.String("default", "2,4,6,8,12,16", "default thread counts")
	reps := fs.Int("replicates", 1, "replicates per configuration")
	warm := fs.Float64("warmup", 20, "simulated warm-up seconds")
	window := fs.Float64("window", 80, "simulated measurement seconds")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(func() error {
		spec := threetier.SweepSpec{Replicates: *reps}
		var err error
		if spec.InjectionRates, err = parseFloats(*rates); err != nil {
			return err
		}
		if spec.MfgThreads, err = parseInts(*mfg); err != nil {
			return err
		}
		if spec.WebThreads, err = parseInts(*web); err != nil {
			return err
		}
		if spec.DefaultThreads, err = parseInts(*def); err != nil {
			return err
		}
		sys := threetier.DefaultSystemParams()
		sys.WarmupTime, sys.MeasureTime = *warm, *window

		obsf.setSeed(*seed)
		obsf.setConfig("configurations", spec.Size())
		obsf.setConfig("replicates", *reps)
		obsf.infof("running %d configurations × %d replicates...\n", spec.Size(), *reps)
		ds, err := threetier.Collect(spec, sys, *seed)
		if err != nil {
			return err
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := ds.WriteCSV(f); err != nil {
			return err
		}
		obsf.metric("samples", float64(ds.Len()))
		fmt.Printf("wrote %d samples to %s\n", ds.Len(), *out)
		// The artifact exists now; fingerprint it for the manifest.
		obsf.setDataset(*out)
		return nil
	}())
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "data.csv", "training CSV")
	modelPath := fs.String("model", "model.json", "output model path")
	hidden := fs.String("hidden", "16", "hidden layer sizes, comma separated")
	epochs := fs.Int("epochs", 2000, "max training epochs")
	seed := fs.Uint64("seed", 1, "weight-init seed")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(func() error {
		ds, err := loadDataset(*data)
		if err != nil {
			return err
		}
		obsf.setDataset(*data)
		obsf.setSeed(*seed)
		obsf.setConfig("hidden", *hidden)
		obsf.setConfig("epochs", *epochs)
		cfg, err := modelConfig(*hidden, *epochs, *seed)
		if err != nil {
			return err
		}
		cfg.Trace = obsf.trace()
		model, err := core.Fit(ds, cfg)
		if err != nil {
			return err
		}
		if err := model.SaveFile(*modelPath); err != nil {
			return err
		}
		obsf.addModel("trained", 0, *modelPath)
		ev, err := core.Evaluate(model, ds)
		if err != nil {
			return err
		}
		obsf.metric("final_loss", model.TrainResult.FinalLoss)
		obsf.metric("epochs", float64(model.TrainResult.Epochs))
		obsf.infof("trained on %d samples: %d epochs, stop=%s, train loss %.4g\n",
			ds.Len(), model.TrainResult.Epochs, model.TrainResult.Reason, model.TrainResult.FinalLoss)
		fmt.Printf("training-set error (HMRE) per indicator:\n")
		for j, name := range ev.TargetNames {
			fmt.Printf("  %-24s %s\n", name, fmtPct(ev.HMRE[j], 1, 2))
		}
		warnUndefined(ev.Undefined())
		fmt.Printf("model saved to %s\n", *modelPath)
		return nil
	}())
}

func cmdCrossval(args []string) error {
	fs := flag.NewFlagSet("crossval", flag.ExitOnError)
	data := fs.String("data", "data.csv", "sample CSV")
	k := fs.Int("k", 5, "number of folds")
	hidden := fs.String("hidden", "16", "hidden layer sizes")
	epochs := fs.Int("epochs", 2000, "max training epochs")
	seed := fs.Uint64("seed", 99, "shuffle/init seed")
	workers := workersFlag(fs)
	df := addDistFlags(fs)
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := df.validate(); err != nil {
		return err
	}
	sched.SetWorkers(*workers)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(func() error {
		if df.isWorker() {
			return df.runWorker(obsf, *workers)
		}
		obsf.setDataset(*data)
		obsf.setSeed(*seed)
		obsf.setWorkers(sched.Workers(*workers))
		obsf.setConfig("hidden", *hidden)
		obsf.setConfig("epochs", *epochs)
		obsf.setConfig("k", *k)
		var cv *core.CVResult
		if df.isCoordinator() {
			ctx, cancel := signalContext()
			defer cancel()
			var err error
			cv, _, err = jobs.CoordinateCrossval(ctx, df.options(obsf), *data, *k, *hidden, *epochs, *seed)
			if err != nil {
				return err
			}
		} else {
			ds, err := loadDataset(*data)
			if err != nil {
				return err
			}
			cfg, err := modelConfig(*hidden, *epochs, *seed)
			if err != nil {
				return err
			}
			cfg.Trace = obsf.trace()
			cv, err = core.CrossValidateWorkers(ds, cfg, *k, *seed, *workers)
			if err != nil {
				return err
			}
		}
		obsf.metric("overall_error", cv.OverallError())
		printCVResult(cv)
		return nil
	}())
}

// printCVResult renders the Table 2 trial/average grid — one printer for
// the local and distributed paths, whose CVResults are bit-identical.
func printCVResult(cv *core.CVResult) {
	fmt.Printf("%-8s", "trial")
	for _, n := range cv.TargetNames {
		fmt.Printf(" %22s", n)
	}
	fmt.Println()
	undefined := map[string]bool{}
	for i, tr := range cv.Trials {
		fmt.Printf("%-8d", i+1)
		for j, e := range tr.Errors {
			fmt.Printf(" %s", fmtPct(e, 21, 1))
			if math.IsNaN(e) {
				undefined[cv.TargetNames[j]] = true
			}
		}
		fmt.Println()
	}
	fmt.Printf("%-8s", "average")
	for _, e := range cv.Averages {
		fmt.Printf(" %s", fmtPct(e, 21, 1))
	}
	if math.IsNaN(cv.OverallAccuracy()) {
		fmt.Printf("\noverall prediction accuracy: n/a (no indicator has a defined error)\n")
	} else {
		fmt.Printf("\noverall prediction accuracy: %.1f%%\n", cv.OverallAccuracy()*100)
	}
	if len(undefined) > 0 {
		names := make([]string, 0, len(undefined))
		for n := range undefined {
			names = append(names, n)
		}
		sort.Strings(names)
		warnUndefined(names)
	}
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "model path")
	xStr := fs.String("x", "", "configuration vector, comma separated")
	fs.Parse(args)

	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	x, err := parseFloats(*xStr)
	if err != nil {
		return err
	}
	if len(x) != model.InputDim() {
		return fmt.Errorf("model expects %d features (%s), got %d",
			model.InputDim(), strings.Join(model.FeatureNames, ","), len(x))
	}
	y := model.Predict(x)
	for j, name := range model.TargetNames {
		fmt.Printf("%-24s %.3f\n", name, y[j])
	}
	return nil
}

func cmdSurface(args []string) error {
	fs := flag.NewFlagSet("surface", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "model path")
	output := fs.Int("output", 4, "indicator index to plot")
	fixed := fs.String("fixed", "560,0,16,0", "fixed configuration template")
	xi := fs.Int("xi", 1, "swept feature index (x axis)")
	yi := fs.Int("yi", 3, "swept feature index (y axis)")
	xr := fs.String("xrange", "2:16:8", "x grid lo:hi:n")
	yr := fs.String("yrange", "8:24:9", "y grid lo:hi:n")
	csvOut := fs.String("csv", "", "optional CSV output path")
	workers := workersFlag(fs)
	df := addDistFlags(fs)
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := df.validate(); err != nil {
		return err
	}
	sched.SetWorkers(*workers)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(func() error {
		if df.isWorker() {
			return df.runWorker(obsf, *workers)
		}
		model, err := loadModel(*modelPath)
		if err != nil {
			return err
		}
		obsf.setWorkers(sched.Workers(*workers))
		obsf.setConfig("model", *modelPath)
		obsf.setConfig("output", *output)
		fixedVec, err := parseFloats(*fixed)
		if err != nil {
			return err
		}
		xs, err := parseRange(*xr)
		if err != nil {
			return err
		}
		ys, err := parseRange(*yr)
		if err != nil {
			return err
		}
		sl := surface.Slice{Fixed: fixedVec, XIndex: *xi, YIndex: *yi, XValues: xs, YValues: ys, Output: *output}
		var grid *surface.Grid
		if df.isCoordinator() {
			ctx, cancel := signalContext()
			defer cancel()
			grid, _, err = jobs.CoordinateSurface(ctx, df.options(obsf), *modelPath, sl)
		} else {
			grid, err = surface.EvaluateTraced(model, sl, model.InputDim(), model.OutputDim(), *workers, obsf.trace())
		}
		if err != nil {
			return err
		}
		hm := plot.HeatMap{
			Title:   fmt.Sprintf("%s over (%s, %s)", model.TargetNames[*output], model.FeatureNames[*xi], model.FeatureNames[*yi]),
			XLabel:  model.FeatureNames[*xi],
			YLabel:  model.FeatureNames[*yi],
			XValues: xs,
			YValues: ys,
			Z:       grid.Z,
		}
		if err := hm.Render(os.Stdout); err != nil {
			return err
		}
		a := surface.Classify(grid)
		fmt.Printf("shape: %s — %s\n", a.Shape, a.Advice)
		if *csvOut != "" {
			f, err := os.Create(*csvOut)
			if err != nil {
				return err
			}
			defer f.Close()
			return plot.WriteSurfaceCSV(f, xs, ys, grid.Z)
		}
		return nil
	}())
}

func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "model path")
	maximize := fs.Int("maximize", 4, "indicator index to maximize")
	boundsStr := fs.String("bounds", "140,80,60,65,inf", "per-indicator upper bounds ('inf' to skip)")
	lo := fs.String("lo", "560,2,8,8", "space lower bounds")
	hi := fs.String("hi", "560,16,24,24", "space upper bounds")
	seed := fs.Uint64("seed", 7, "search seed")
	pareto := fs.Bool("pareto", false, "report the Pareto front over (min response times, max throughput) instead of one SLA optimum")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(cmdRecommendRun(obsf, *modelPath, *maximize, *boundsStr, *lo, *hi, *seed, *pareto))
}

func cmdRecommendRun(obsf *obsFlags, modelPath string, maximizeV int, boundsStr, lo, hi string, seedV uint64, paretoV bool) error {
	maximize, seed, pareto := &maximizeV, &seedV, &paretoV
	model, err := loadModel(modelPath)
	if err != nil {
		return err
	}
	obsf.setSeed(*seed)
	obsf.setConfig("model", modelPath)
	obsf.setConfig("maximize", *maximize)
	bounds, err := parseFloats(boundsStr)
	if err != nil {
		return err
	}
	loV, err := parseFloats(lo)
	if err != nil {
		return err
	}
	hiV, err := parseFloats(hi)
	if err != nil {
		return err
	}
	integers := make([]bool, len(loV))
	for i, name := range model.FeatureNames {
		integers[i] = strings.Contains(name, "threads")
	}
	space := recommend.Space{Lo: loV, Hi: hiV, Integer: integers}
	if *pareto {
		objs := make([]recommend.Objective, model.OutputDim())
		for j := range objs {
			if j == *maximize {
				objs[j] = recommend.Maximize
			} else {
				objs[j] = recommend.Minimize
			}
		}
		front, err := recommend.ParetoFront(model, space, objs, recommend.Options{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("Pareto front (%d non-dominated configurations):\n", len(front))
		limit := len(front)
		if limit > 20 {
			limit = 20
		}
		for _, cand := range front[:limit] {
			fmt.Printf(" x=%v →", cand.X)
			for j, name := range model.TargetNames {
				fmt.Printf(" %s=%.1f", name, cand.Y[j])
			}
			fmt.Println()
		}
		if len(front) > limit {
			fmt.Printf(" ... and %d more\n", len(front)-limit)
		}
		return nil
	}
	res, err := recommend.Search(model, space, recommend.SLAScore(*maximize, bounds), recommend.Options{Seed: *seed})
	if err != nil {
		return err
	}
	obsf.metric("best_score", res.Best.Score)
	fmt.Printf("best configuration (score %.3f):\n", res.Best.Score)
	for i, name := range model.FeatureNames {
		fmt.Printf("  %-20s %g\n", name, res.Best.X[i])
	}
	fmt.Println("predicted indicators:")
	for j, name := range model.TargetNames {
		fmt.Printf("  %-24s %.3f\n", name, res.Best.Y[j])
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	data := fs.String("data", "data.csv", "sample CSV")
	k := fs.Int("k", 5, "folds")
	hidden := fs.String("hidden", "16", "MLP hidden sizes")
	epochs := fs.Int("epochs", 2000, "MLP training epochs")
	seed := fs.Uint64("seed", 99, "seed")
	workers := workersFlag(fs)
	df := addDistFlags(fs)
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := df.validate(); err != nil {
		return err
	}
	sched.SetWorkers(*workers)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(func() error {
		if df.isWorker() {
			return df.runWorker(obsf, *workers)
		}
		if df.isCoordinator() {
			obsf.setDataset(*data)
			obsf.setSeed(*seed)
			obsf.setConfig("k", *k)
			ctx, cancel := signalContext()
			defer cancel()
			means, _, err := jobs.CoordinateCompare(ctx, df.options(obsf), *data, *k, *hidden, *epochs, *seed)
			if err != nil {
				return err
			}
			printFamilyMeans(obsf, means)
			return nil
		}
		return cmdCompareRun(obsf, *data, *k, *hidden, *epochs, *seed, *workers)
	}())
}

// printFamilyMeans renders the §4 family table and records its metrics —
// one printer for the local and distributed comparison paths.
func printFamilyMeans(obsf *obsFlags, means []jobs.FamilyMean) {
	fmt.Printf("%-12s %12s\n", "model", "mean HMRE")
	for _, fm := range means {
		fmt.Printf("%-12s %11.2f%%\n", fm.Name, fm.Mean*100)
		obsf.metric("hmre_"+fm.Name, fm.Mean)
	}
}

func cmdCompareRun(obsf *obsFlags, data string, k int, hidden string, epochs int, seed uint64, workers int) error {
	ds, err := loadDataset(data)
	if err != nil {
		return err
	}
	obsf.setDataset(data)
	obsf.setSeed(seed)
	obsf.setWorkers(sched.Workers(workers))
	obsf.setConfig("k", k)
	fams, err := jobs.CompareFamilies(hidden, epochs)
	if err != nil {
		return err
	}

	shuffled := ds.Clone()
	shuffled.Shuffle(rng.New(seed))
	folds, err := shuffled.KFold(k)
	if err != nil {
		return err
	}
	// Every (family, fold) cell fits independently; fan the grid out and
	// reduce each family's folds in ascending order afterwards. Cell spans
	// buffer per index and replay in order, keeping the trace deterministic.
	fork := obsf.trace().Fork(len(fams) * k)
	cells, err := sched.MapWorker(workers, len(fams)*k, func(idx, w int) (float64, error) {
		fi, f := idx/k, idx%k
		slot := fork.Slot(idx)
		span := slot.StartSpan("compare-cell", idx, w)
		defer span.End()
		mean, err := jobs.CompareCell(shuffled, folds, fams, k, seed, idx)
		if err != nil {
			return 0, err
		}
		if slot.Enabled() {
			slot.Emit("compare_cell",
				obs.String("family", fams[fi].Name),
				obs.Int("fold", f),
				obs.Float("mean_hmre", mean),
			)
		}
		return mean, nil
	})
	fork.Join()
	if err != nil {
		return err
	}
	means := make([]jobs.FamilyMean, len(fams))
	for fi, fm := range fams {
		var errSum float64
		for f := 0; f < k; f++ {
			errSum += cells[fi*k+f]
		}
		means[fi] = jobs.FamilyMean{Name: fm.Name, Mean: errSum / float64(k)}
	}
	printFamilyMeans(obsf, means)
	return nil
}
