package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"nnwc/internal/dist"
)

// clusterEvent is the superset of cluster-trace fields the timeline
// reads; each event type populates the subset it carries.
type clusterEvent struct {
	T      string  `json:"t"`
	Ev     string  `json:"ev"`
	Job    string  `json:"job"`
	Kind   string  `json:"kind"`
	Worker string  `json:"worker"`
	Lo     int     `json:"lo"`
	Hi     int     `json:"hi"`
	Index  int     `json:"index"`
	Lease  int     `json:"lease"`
	Tasks  int     `json:"tasks"`
	Leases int     `json:"leases"`
	Failed int     `json:"failed"`
	MS     float64 `json:"ms"`
}

func (e clusterEvent) time() (time.Time, bool) {
	t, err := time.Parse(time.RFC3339Nano, e.T)
	return t, err == nil
}

// taskBar is one completed task on a worker's lane.
type taskBar struct {
	index      int
	worker     string
	start, end time.Time
	ms         float64
}

const laneWidth = 60

// runsTimeline renders the per-worker lease/task timeline of a run's
// merged cluster trace: who ran what when, how long each task took,
// which tasks straggled, and whether any leases expired and were
// reassigned. It reads the *raw* trace — the wall-clock fields the
// determinism tests strip are exactly what a timeline is made of.
func runsTimeline(base, id string) error {
	name, err := resolveRun(base, id)
	if err != nil {
		return err
	}
	path := filepath.Join(base, name, dist.ClusterTraceFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("no cluster trace for run %s (coordinated runs with -trace write %s): %w", name, dist.ClusterTraceFileName, err)
	}

	var job, done *clusterEvent
	var tasks []taskBar
	var leaseGrants, reassignSweeps, reassignedTasks int
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var ev clusterEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			continue // foreign lines (runner events) are not timeline material
		}
		switch ev.Ev {
		case "cluster_job":
			e := ev
			job = &e
		case "cluster_done":
			e := ev
			done = &e
		case "dist_lease":
			leaseGrants++
		case "dist_reassign":
			reassignSweeps++
			reassignedTasks += ev.Tasks
		case "dist_task":
			end, ok := ev.time()
			if !ok {
				continue
			}
			start := end.Add(-time.Duration(ev.MS * float64(time.Millisecond)))
			tasks = append(tasks, taskBar{index: ev.Index, worker: ev.Worker, start: start, end: end, ms: ev.MS})
		}
	}
	if job != nil {
		fmt.Printf("cluster timeline: %s job %q, %d task(s)\n", job.Kind, job.Job, job.Tasks)
	} else {
		fmt.Printf("cluster timeline: %s\n", path)
	}
	if len(tasks) == 0 {
		fmt.Println("no completed tasks in the trace")
		return nil
	}

	// Time origin and span over all task bars.
	t0, t1 := tasks[0].start, tasks[0].end
	for _, tb := range tasks {
		if tb.start.Before(t0) {
			t0 = tb.start
		}
		if tb.end.After(t1) {
			t1 = tb.end
		}
	}
	span := t1.Sub(t0)
	if span <= 0 {
		span = time.Millisecond
	}

	// Median task wall time → straggler threshold (>2× median).
	byMS := make([]float64, len(tasks))
	for i, tb := range tasks {
		byMS[i] = tb.ms
	}
	sort.Float64s(byMS)
	median := byMS[len(byMS)/2]
	straggler := func(ms float64) bool { return median > 0 && ms > 2*median }

	byWorker := map[string][]taskBar{}
	for _, tb := range tasks {
		byWorker[tb.worker] = append(byWorker[tb.worker], tb)
	}
	workers := sortedKeys(byWorker)

	fmt.Printf("span %.2fs across %d worker(s), %d lease grant(s)", span.Seconds(), len(workers), leaseGrants)
	if reassignSweeps > 0 {
		fmt.Printf(", %d task(s) reassigned in %d expiry sweep(s)", reassignedTasks, reassignSweeps)
	}
	fmt.Println()
	if done != nil && done.Failed > 0 {
		fmt.Printf("FAILED: %d of %d task(s)\n", done.Failed, done.Tasks)
	}

	colDur := span / laneWidth
	fmt.Printf("\nworker lanes (one column ≈ %s):\n", colDur.Round(time.Millisecond))
	nameW := 0
	for _, w := range workers {
		if len(w) > nameW {
			nameW = len(w)
		}
	}
	for _, w := range workers {
		lane := make([]rune, laneWidth)
		for i := range lane {
			lane[i] = '·'
		}
		var busy time.Duration
		for _, tb := range byWorker[w] {
			busy += tb.end.Sub(tb.start)
			lo := int(float64(tb.start.Sub(t0)) / float64(span) * laneWidth)
			hi := int(float64(tb.end.Sub(t0)) / float64(span) * laneWidth)
			if hi <= lo {
				hi = lo + 1
			}
			mark := '█'
			if straggler(tb.ms) {
				mark = '!'
			}
			for i := lo; i < hi && i < laneWidth; i++ {
				lane[i] = mark
			}
		}
		fmt.Printf("  %-*s |%s| %d task(s), %.2fs busy\n", nameW, w, string(lane), len(byWorker[w]), busy.Seconds())
	}

	sort.Slice(tasks, func(i, j int) bool { return tasks[i].index < tasks[j].index })
	fmt.Println("\ntasks:")
	fmt.Printf("  %-6s %-*s %10s\n", "index", nameW, "worker", "ms")
	for _, tb := range tasks {
		note := ""
		if straggler(tb.ms) {
			note = "  ← straggler (>2x median)"
		}
		fmt.Printf("  %-6d %-*s %10.1f%s\n", tb.index, nameW, tb.worker, tb.ms, note)
	}
	return nil
}

// runsTail streams live progress. With -addr it polls the coordinator's
// /dist/progress endpoint (workers, throughput, ETA); with a run id it
// re-reads the run's dist state journal, which lags only by the
// journal's write granularity.
func runsTail(base, id, addr string, interval time.Duration) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if addr != "" {
		return tailCoordinator(dist.NormalizeURL(addr), interval)
	}
	name, err := resolveRun(base, id)
	if err != nil {
		return err
	}
	return tailJournal(filepath.Join(base, name, dist.StateFileName), interval)
}

func tailCoordinator(url string, interval time.Duration) error {
	client := &http.Client{Timeout: 10 * time.Second}
	misses := 0
	for {
		var p dist.Progress
		resp, err := client.Get(url + "/dist/progress")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&p)
			resp.Body.Close()
		}
		if err != nil {
			// A vanished coordinator after progress was seen means the job
			// finished (it lingers only briefly past Done).
			misses++
			if misses >= 3 {
				return fmt.Errorf("coordinator at %s is not answering: %v", url, err)
			}
		} else {
			misses = 0
			fmt.Println(progressLine(p))
			if p.Total > 0 && p.Completed+p.Failed >= p.Total {
				return nil
			}
		}
		time.Sleep(interval)
	}
}

func tailJournal(path string, interval time.Duration) error {
	for {
		sum, err := dist.ReadStateSummary(path)
		if err != nil {
			return fmt.Errorf("reading dist journal %s: %w", path, err)
		}
		fmt.Println(progressLine(sum.Progress))
		if sum.Total > 0 && sum.Completed+sum.Failed >= sum.Total {
			return nil
		}
		time.Sleep(interval)
	}
}

// progressLine renders one tail line: counts, live workers, throughput
// and the remaining-work ETA when the coordinator reports elapsed time.
func progressLine(p dist.Progress) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d task(s)", p.Completed+p.Failed, p.Total)
	if p.Failed > 0 {
		fmt.Fprintf(&b, " (%d failed)", p.Failed)
	}
	if p.Workers > 0 {
		fmt.Fprintf(&b, ", %d worker(s)", p.Workers)
	}
	if p.ElapsedSec > 0 {
		fmt.Fprintf(&b, ", %.1fs elapsed", p.ElapsedSec)
		if p.Completed > 0 && p.Completed < p.Total {
			rate := float64(p.Completed) / p.ElapsedSec
			eta := float64(p.Total-p.Completed-p.Failed) / rate
			fmt.Fprintf(&b, ", %.2f task/s, ETA %.0fs", rate, eta)
		}
	}
	return b.String()
}
