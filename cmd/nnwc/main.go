// Command nnwc is the workload-characterization toolchain: generate sample
// datasets from the three-tier simulator, train and persist neural-network
// models, cross-validate them, predict unseen configurations, render
// response surfaces, and recommend configurations.
//
// Usage:
//
//	nnwc datagen   -out data.csv [-seed N] [-rates 480,560,640] [-mfg 8,16,24] [-web 8,...] [-default 2,...] [-replicates 1]
//	nnwc train     -data data.csv -model model.json [-hidden 16] [-epochs 2000] [-seed N]
//	nnwc crossval  -data data.csv [-k 5] [-hidden 16] [-seed N] [-workers N]
//	nnwc predict   -model model.json -x 560,8,16,18
//	nnwc surface   -model model.json -output 4 [-fixed 560,0,16,0] [-xi 1] [-yi 3] [-xrange 2:16:8] [-yrange 8:24:9] [-workers N]
//	nnwc recommend -model model.json [-maximize 4] [-bounds 140,80,60,65,inf]
//	nnwc compare   -data data.csv [-k 5] [-workers N]
//	nnwc serve     -model model.json | -models web=a.json,db=b.json [-addr :8080] [-max-batch 64] [-max-wait 2ms] [-workers N] [-auto-promote]
//	nnwc fleet     list|deploy|promote|rollback [-addr URL] [-model T] [-path P] [-canary]
//	nnwc runs      list|show|diff|timeline|tail [-dir runs] [-addr URL] [id...]
//
// Long-running subcommands additionally accept -trace DIR (record a JSONL
// event trace and provenance manifest under DIR), -quiet, and -pprof-addr
// ADDR (profiling/metrics endpoints); `nnwc runs` inspects recorded traces.
//
// Subcommands with parallel phases (crossval, compare, surface, select,
// importance) accept -workers (default GOMAXPROCS) to bound the
// deterministic scheduler's concurrency; outputs are bit-identical at
// every setting. The same subcommands also shard across processes and
// machines: start a coordinator with -coordinator ADDR and any number of
// workers with -worker URL (plus -dist-state FILE for resumable runs,
// -dist-lease N, -dist-lease-ttl DUR, -dist-cache DIR). Distribution
// never changes results — every task's seed derives from (seed, index)
// and reductions replay in index order, so the distributed output is
// byte-identical to a local run's.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "datagen":
		err = cmdDatagen(os.Args[2:])
	case "doegen":
		err = cmdDoegen(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "crossval":
		err = cmdCrossval(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "surface":
		err = cmdSurface(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "importance":
		err = cmdImportance(os.Args[2:])
	case "select":
		err = cmdSelect(os.Args[2:])
	case "runs":
		err = cmdRuns(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "nnwc: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "nnwc: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `nnwc — neural-network workload characterization (IISWC 2006 reproduction)

subcommands:
  datagen    run the three-tier simulator over a configuration sweep, emit CSV samples
  doegen     like datagen but with a space-filling experiment design (LHS/random/factorial)
  simulate   deep-dive one configuration: percentiles, CIs, per-pool breakdown
  train      train an MLP model on a sample CSV and save it as JSON
  crossval   k-fold cross-validation (the paper's Table 2 protocol)
  predict    predict the performance indicators of one configuration
  surface    evaluate a model over a 2-D configuration slice (the paper's 3-D figures)
  recommend  search for the best configuration under a scoring function
  serve      HTTP prediction server: a multi-tenant model fleet with cross-tenant
             batched inference, canary/shadow deployment, hot reload, metrics
  fleet      operate a running serve instance: list, deploy, promote, rollback
  compare    compare linear/polynomial/log/MLP/LNN model families by CV error
  importance permutation feature importance of a trained model on a dataset
  select     automated hidden-node-count selection by cross-validation
  runs       inspect recorded run traces: list, show, diff, plus the
             distributed-run views timeline (per-worker task lanes from the
             merged cluster trace) and tail (live coordinator progress)

long-running subcommands share three observability flags:
  -trace DIR       record a JSONL event trace + provenance manifest under DIR
  -quiet           suppress progress chatter (results still print)
  -pprof-addr ADDR serve /debug/pprof, /debug/vars and /metrics on ADDR

experiment subcommands (crossval, compare, surface, importance, select)
also distribute across processes/machines, with bit-identical results:
  -coordinator ADDR  serve the experiment's tasks on ADDR and reduce results
  -worker URL        pull and execute tasks from the coordinator at URL
  -dist-state FILE   journal completed tasks; restarting resumes, not recomputes

run 'nnwc <subcommand> -h' for flags.`)
}
