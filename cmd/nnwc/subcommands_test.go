package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("1, 2.5 ,-3,inf")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2.5 || got[2] != -3 || !math.IsInf(got[3], 1) {
		t.Fatalf("parsed %v", got)
	}
	if _, err := parseFloats("1,zap"); err == nil {
		t.Fatal("bad float accepted")
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("8,16,24")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 8 || got[2] != 24 {
		t.Fatalf("parsed %v", got)
	}
}

func TestParseRange(t *testing.T) {
	got, err := parseRange("0:10:5")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || got[0] != 0 || got[4] != 10 {
		t.Fatalf("range %v", got)
	}
	for _, bad := range []string{"1:2", "a:2:3", "1:b:3", "1:2:c"} {
		if _, err := parseRange(bad); err == nil {
			t.Fatalf("range %q accepted", bad)
		}
	}
}

// TestEndToEndCLIFlow exercises datagen → train → crossval → predict →
// surface against real files in a temp dir — the full toolchain a user
// would run.
func TestEndToEndCLIFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	model := filepath.Join(dir, "model.json")

	err := cmdDatagen([]string{
		"-out", data, "-seed", "5",
		"-rates", "400,480", "-mfg", "16", "-web", "12,16,20", "-default", "4,8",
		"-warmup", "2", "-window", "8",
	})
	if err != nil {
		t.Fatalf("datagen: %v", err)
	}
	if _, err := os.Stat(data); err != nil {
		t.Fatal("data.csv not written")
	}

	if err := cmdTrain([]string{"-data", data, "-model", model, "-hidden", "10", "-epochs", "300"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal("model.json not written")
	}

	if err := cmdCrossval([]string{"-data", data, "-k", "3", "-hidden", "8", "-epochs", "200"}); err != nil {
		t.Fatalf("crossval: %v", err)
	}

	if err := cmdPredict([]string{"-model", model, "-x", "440,6,16,14"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	if err := cmdPredict([]string{"-model", model, "-x", "440,6"}); err == nil {
		t.Fatal("predict accepted wrong arity")
	}

	surfaceCSV := filepath.Join(dir, "surface.csv")
	err = cmdSurface([]string{
		"-model", model, "-output", "1",
		"-fixed", "440,0,16,0", "-xi", "1", "-yi", "3",
		"-xrange", "4:8:3", "-yrange", "12:20:3", "-csv", surfaceCSV,
	})
	if err != nil {
		t.Fatalf("surface: %v", err)
	}
	if _, err := os.Stat(surfaceCSV); err != nil {
		t.Fatal("surface CSV not written")
	}

	err = cmdRecommend([]string{
		"-model", model, "-maximize", "4",
		"-lo", "440,4,16,12", "-hi", "440,8,16,20",
	})
	if err != nil {
		t.Fatalf("recommend: %v", err)
	}

	if err := cmdCompare([]string{"-data", data, "-k", "3", "-epochs", "200"}); err != nil {
		t.Fatalf("compare: %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := loadDataset("/nonexistent/x.csv"); err == nil {
		t.Fatal("missing dataset accepted")
	}
	if _, err := loadModel("/nonexistent/m.json"); err == nil {
		t.Fatal("missing model accepted")
	}
}

// TestAnalysisSubcommands exercises importance and select against a tiny
// generated dataset and trained model.
func TestAnalysisSubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "d.csv")
	model := filepath.Join(dir, "m.json")
	if err := cmdDatagen([]string{
		"-out", data, "-rates", "480,560", "-mfg", "8,16", "-web", "12,18", "-default", "4,8",
		"-warmup", "2", "-window", "8",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-data", data, "-model", model, "-hidden", "8", "-epochs", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdImportance([]string{"-model", model, "-data", data, "-repeats", "2"}); err != nil {
		t.Fatalf("importance: %v", err)
	}
	if err := cmdSelect([]string{"-data", data, "-k", "3", "-epochs", "150", "-candidates", "4;8"}); err != nil {
		t.Fatalf("select: %v", err)
	}
	if err := cmdSelect([]string{"-data", data, "-candidates", "4;zap"}); err == nil {
		t.Fatal("bad candidate layout accepted")
	}
}

func TestParseBound(t *testing.T) {
	lo, hi, err := parseBound("2:24")
	if err != nil || lo != 2 || hi != 24 {
		t.Fatalf("parseBound: %v %v %v", lo, hi, err)
	}
	for _, bad := range []string{"2", "a:3", "2:b", "1:2:3"} {
		if _, _, err := parseBound(bad); err == nil {
			t.Fatalf("bound %q accepted", bad)
		}
	}
}

func TestDoegenFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	for _, design := range []string{"lhs", "random", "factorial"} {
		out := filepath.Join(dir, design+".csv")
		args := []string{"-out", out, "-design", design, "-n", "12", "-levels", "2", "-warmup", "1", "-window", "4"}
		if err := cmdDoegen(args); err != nil {
			t.Fatalf("doegen %s: %v", design, err)
		}
		ds, err := loadDataset(out)
		if err != nil {
			t.Fatal(err)
		}
		want := 12
		if design == "factorial" {
			want = 16 // 2^4 levels
		}
		if ds.Len() != want {
			t.Fatalf("%s produced %d samples, want %d", design, ds.Len(), want)
		}
	}
	if err := cmdDoegen([]string{"-design", "nope"}); err == nil {
		t.Fatal("unknown design accepted")
	}
	if err := cmdDoegen([]string{"-rate", "bad"}); err == nil {
		t.Fatal("bad bound accepted")
	}
}

func TestSimulateFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	if err := cmdSimulate([]string{"-x", "400,8,16,18", "-warmup", "2", "-window", "8"}); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if err := cmdSimulate([]string{"-x", "400,8,16,18", "-users", "100", "-think", "0.4", "-warmup", "2", "-window", "8"}); err != nil {
		t.Fatalf("simulate closed: %v", err)
	}
	if err := cmdSimulate([]string{"-x", "1,2"}); err == nil {
		t.Fatal("short vector accepted")
	}
	if err := cmdSimulate([]string{"-x", "zap"}); err == nil {
		t.Fatal("bad vector accepted")
	}
}

func TestRecommendPareto(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "d.csv")
	model := filepath.Join(dir, "m.json")
	if err := cmdDatagen([]string{
		"-out", data, "-rates", "480,560", "-mfg", "8,16", "-web", "12,20", "-default", "4,10",
		"-warmup", "2", "-window", "8",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTrain([]string{"-data", data, "-model", model, "-hidden", "8", "-epochs", "200"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRecommend([]string{
		"-model", model, "-pareto",
		"-lo", "520,4,8,12", "-hi", "520,10,16,20",
	}); err != nil {
		t.Fatalf("pareto recommend: %v", err)
	}
}

func TestSimulateJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	if err := cmdSimulate([]string{"-x", "300,8,16,18", "-warmup", "1", "-window", "5", "-json"}); err != nil {
		t.Fatalf("simulate -json: %v", err)
	}
}
