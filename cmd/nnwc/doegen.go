package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nnwc/internal/doe"
	"nnwc/internal/threetier"
)

// parseBound parses "lo:hi" into two floats.
func parseBound(s string) (lo, hi float64, err error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bound %q must be lo:hi", s)
	}
	if lo, err = strconv.ParseFloat(parts[0], 64); err != nil {
		return 0, 0, err
	}
	if hi, err = strconv.ParseFloat(parts[1], 64); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

// cmdDoegen generates a dataset from a space-filling experiment design
// instead of a rectangular sweep — often far more sample-efficient (see
// `cmd/experiments -run sampling`).
func cmdDoegen(args []string) error {
	fs := flag.NewFlagSet("doegen", flag.ExitOnError)
	out := fs.String("out", "data.csv", "output CSV path")
	design := fs.String("design", "lhs", "experiment design: lhs | random | factorial")
	n := fs.Int("n", 64, "sample budget (levels^4 for factorial)")
	levels := fs.Int("levels", 3, "levels per dimension (factorial only)")
	seed := fs.Uint64("seed", 2006, "design + simulation seed")
	rate := fs.String("rate", "440:640", "injection-rate range lo:hi")
	def := fs.String("default", "2:24", "default-thread range lo:hi")
	mfg := fs.String("mfg", "8:24", "mfg-thread range lo:hi")
	web := fs.String("web", "8:32", "web-thread range lo:hi")
	warm := fs.Float64("warmup", 20, "simulated warm-up seconds")
	window := fs.Float64("window", 80, "simulated measurement seconds")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(cmdDoegenRun(obsf, *out, *design, *n, *levels, *seed, *rate, *def, *mfg, *web, *warm, *window))
}

func cmdDoegenRun(obsf *obsFlags, out, design string, n, levels int, seed uint64, rate, def, mfg, web string, warm, window float64) error {
	var d doe.Design
	switch design {
	case "lhs":
		d = doe.LatinHypercube{Seed: seed}
	case "random":
		d = doe.UniformRandom{Seed: seed}
	case "factorial":
		d = doe.FullFactorial{Levels: levels}
	default:
		return fmt.Errorf("unknown design %q (want lhs, random, or factorial)", design)
	}

	dims := make([]doe.Dimension, 4)
	for i, spec := range []struct {
		name    string
		bound   string
		integer bool
	}{
		{"injection_rate", rate, false},
		{"default_threads", def, true},
		{"mfg_threads", mfg, true},
		{"web_threads", web, true},
	} {
		lo, hi, err := parseBound(spec.bound)
		if err != nil {
			return fmt.Errorf("parsing -%s: %w", strings.SplitN(spec.name, "_", 2)[0], err)
		}
		dims[i] = doe.Dimension{Name: spec.name, Lo: lo, Hi: hi, Integer: spec.integer}
	}

	points, err := d.Points(n, len(dims))
	if err != nil {
		return err
	}
	scaled, err := doe.Scale(points, dims)
	if err != nil {
		return err
	}
	configs := make([]threetier.Config, len(scaled))
	for i, row := range scaled {
		cfg, err := threetier.ConfigFromVector(row)
		if err != nil {
			return err
		}
		configs[i] = cfg
	}

	sys := threetier.DefaultSystemParams()
	sys.WarmupTime, sys.MeasureTime = warm, window
	obsf.setSeed(seed)
	obsf.setConfig("design", d.Name())
	obsf.setConfig("configurations", len(configs))
	obsf.infof("running %d %s-designed configurations...\n", len(configs), d.Name())
	ds, err := threetier.CollectConfigs(configs, 1, sys, seed+1)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		return err
	}
	obsf.metric("samples", float64(ds.Len()))
	fmt.Printf("wrote %d samples to %s\n", ds.Len(), out)
	obsf.setDataset(out)
	return nil
}
