package main

import (
	"flag"
	"fmt"
	"strings"

	"nnwc/internal/core"
	"nnwc/internal/dist/jobs"
	"nnwc/internal/sched"
	"nnwc/internal/sensitivity"
)

func cmdImportance(args []string) error {
	fs := flag.NewFlagSet("importance", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "trained model path")
	data := fs.String("data", "data.csv", "dataset the importance is computed on")
	repeats := fs.Int("repeats", 5, "permutation repeats")
	seed := fs.Uint64("seed", 7, "permutation seed")
	workers := workersFlag(fs)
	df := addDistFlags(fs)
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := df.validate(); err != nil {
		return err
	}
	sched.SetWorkers(*workers)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(func() error {
		if df.isWorker() {
			return df.runWorker(obsf, *workers)
		}
		obsf.setDataset(*data)
		obsf.setSeed(*seed)
		obsf.setWorkers(sched.Workers(*workers))
		var im *sensitivity.Importance
		if df.isCoordinator() {
			ctx, cancel := signalContext()
			defer cancel()
			var err error
			im, _, err = jobs.CoordinateImportance(ctx, df.options(obsf), *modelPath, *data, *repeats, *seed)
			if err != nil {
				return err
			}
		} else {
			model, err := loadModel(*modelPath)
			if err != nil {
				return err
			}
			ds, err := loadDataset(*data)
			if err != nil {
				return err
			}
			im, err = sensitivity.PermutationImportance(model, ds, sensitivity.Options{Repeats: *repeats, Seed: *seed, Workers: *workers})
			if err != nil {
				return err
			}
		}
		fmt.Printf("%-20s", "feature")
		for _, n := range im.TargetNames {
			fmt.Printf(" %20s", n)
		}
		fmt.Println()
		for i, fname := range im.FeatureNames {
			fmt.Printf("%-20s", fname)
			for _, v := range im.Scores[i] {
				fmt.Printf(" %20.3f", v)
			}
			fmt.Println()
		}
		fmt.Println("(relative RMSE increase when the feature is shuffled; larger = more influential)")
		return nil
	}())
}

func cmdSelect(args []string) error {
	fs := flag.NewFlagSet("select", flag.ExitOnError)
	data := fs.String("data", "data.csv", "sample CSV")
	k := fs.Int("k", 5, "cross-validation folds")
	epochs := fs.Int("epochs", 1000, "training epochs per candidate")
	seed := fs.Uint64("seed", 13, "seed")
	layouts := fs.String("candidates", "4;8;16;32;16,8", "semicolon-separated hidden layouts (each comma-separated)")
	workers := workersFlag(fs)
	df := addDistFlags(fs)
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := df.validate(); err != nil {
		return err
	}
	sched.SetWorkers(*workers)
	if err := obsf.start(args); err != nil {
		return err
	}
	return obsf.finish(func() error {
		if df.isWorker() {
			return df.runWorker(obsf, *workers)
		}
		obsf.setDataset(*data)
		obsf.setSeed(*seed)
		obsf.setWorkers(sched.Workers(*workers))
		obsf.setConfig("candidates", *layouts)
		var candidates [][]int
		for _, spec := range strings.Split(*layouts, ";") {
			layout, err := parseInts(spec)
			if err != nil {
				return fmt.Errorf("parsing candidate %q: %w", spec, err)
			}
			candidates = append(candidates, layout)
		}
		var sel *core.SelectionResult
		if df.isCoordinator() {
			ctx, cancel := signalContext()
			defer cancel()
			var err error
			sel, _, err = jobs.CoordinateSelect(ctx, df.options(obsf), *data, candidates, *k, *epochs, *seed)
			if err != nil {
				return err
			}
		} else {
			ds, err := loadDataset(*data)
			if err != nil {
				return err
			}
			base, err := modelConfig("16", *epochs, *seed)
			if err != nil {
				return err
			}
			base.Trace = obsf.trace()
			sel, err = core.SelectNodeCount(ds, base, candidates, *k, *seed)
			if err != nil {
				return err
			}
		}
		obsf.metric("best_error", sel.Best.Error)
		fmt.Printf("%-14s %10s %12s\n", "hidden", "params", "CV error")
		for _, cand := range sel.Candidates {
			fmt.Printf("%-14s %10d %11.2f%%\n", fmt.Sprint(cand.Hidden), cand.Params, cand.Error*100)
		}
		fmt.Printf("selected: %v\n", sel.Best.Hidden)
		return nil
	}())
}
