package main

import (
	"flag"
	"fmt"

	"nnwc/internal/obs"
)

// obsFlags bundles the observability flags every long-running subcommand
// shares: -trace (run directory), -quiet, and -pprof-addr. Register with
// addObsFlags, call start after flag parsing, and wrap the command's error
// with finish so the manifest records the outcome.
type obsFlags struct {
	command string
	dir     *string
	quiet   *bool
	pprof   *string

	run *obs.Run
}

// addObsFlags registers -trace, -quiet and -pprof-addr on fs.
func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{command: fs.Name()}
	o.dir = fs.String("trace", "", "write a run trace and manifest under this directory (e.g. runs/)")
	o.quiet = fs.Bool("quiet", false, "suppress informational output (results still print)")
	o.pprof = fs.String("pprof-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address")
	return o
}

// start activates whatever the flags asked for: the debug server and the
// run directory. Call once, after fs.Parse; args are recorded verbatim in
// the manifest.
func (o *obsFlags) start(args []string) error {
	if *o.pprof != "" {
		addr, err := obs.StartDebugServer(*o.pprof)
		if err != nil {
			return fmt.Errorf("starting debug server: %w", err)
		}
		o.infof("nnwc %s: debug server on http://%s\n", o.command, addr)
	}
	if *o.dir != "" {
		run, err := obs.StartRun(*o.dir, o.command, args)
		if err != nil {
			return err
		}
		o.run = run
		o.infof("nnwc %s: tracing run %s\n", o.command, run.Dir)
	}
	return nil
}

// trace returns the run's event stream; nil (disabled) when -trace was not
// given. Safe to thread into configs unconditionally.
func (o *obsFlags) trace() *obs.Trace { return o.run.Trace() }

// setDataset records the input dataset's path and hash in the manifest.
func (o *obsFlags) setDataset(path string) { o.run.SetDataset(path) }

// setSeed records the run's primary seed in the manifest.
func (o *obsFlags) setSeed(seed uint64) {
	if o.run != nil {
		o.run.Manifest.Seed = seed
	}
}

// setWorkers records the worker bound in the manifest.
func (o *obsFlags) setWorkers(workers int) {
	if o.run != nil {
		o.run.Manifest.Workers = workers
	}
}

// setConfig records one named configuration value in the manifest.
func (o *obsFlags) setConfig(key string, value any) {
	if o.run != nil {
		if o.run.Manifest.Config == nil {
			o.run.Manifest.Config = map[string]any{}
		}
		o.run.Manifest.Config[key] = value
	}
}

// addModel fingerprints a model artifact into the manifest (best-effort:
// provenance should never fail a run that already did its work).
func (o *obsFlags) addModel(name string, version int, path string) {
	if o.run == nil {
		return
	}
	if err := o.run.Manifest.AddModel(name, version, path); err != nil {
		o.infof("nnwc %s: could not fingerprint model %s: %v\n", o.command, path, err)
	}
}

// metric records one named result (e.g. the overall CV error) in the
// manifest, so `nnwc runs diff` can compare runs without re-parsing traces.
func (o *obsFlags) metric(name string, v float64) {
	if o.run != nil {
		if o.run.Manifest.Metrics == nil {
			o.run.Manifest.Metrics = map[string]float64{}
		}
		o.run.Manifest.Metrics[name] = v
	}
}

// finish completes the run (writing the manifest) and returns the
// command's error, preferring it over any manifest-write failure.
func (o *obsFlags) finish(runErr error) error {
	ferr := o.run.Finish(runErr)
	if runErr != nil {
		return runErr
	}
	if ferr != nil {
		return ferr
	}
	if o.run != nil {
		o.infof("nnwc %s: run recorded in %s\n", o.command, o.run.Dir)
	}
	return nil
}

// infof prints unless -quiet; use it for progress chatter, never results.
func (o *obsFlags) infof(format string, args ...any) {
	if !*o.quiet {
		fmt.Printf(format, args...)
	}
}
