package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"nnwc/internal/dist"
	"nnwc/internal/dist/jobs"
)

// distFlags bundles the distributed-execution flags the experiment
// subcommands (crossval, compare, surface, importance, select) share:
//
//   - -coordinator ADDR shards the experiment over HTTP: the process
//     serves the job on ADDR, workers pull leases, and the reduced result
//     prints exactly as a local run's would — bit-identical output.
//   - -worker URL turns the process into a worker for the coordinator at
//     URL; all job kinds are served regardless of which subcommand
//     launched the worker.
//
// Neither flag set means the subcommand runs locally, as always.
type distFlags struct {
	coordinator *string
	worker      *string
	state       *string
	leaseSize   *int
	leaseTTL    *time.Duration
	cache       *string
}

// addDistFlags registers the -coordinator/-worker flag family on fs.
func addDistFlags(fs *flag.FlagSet) *distFlags {
	df := &distFlags{}
	df.coordinator = fs.String("coordinator", "", "coordinate this experiment over HTTP on ADDR (e.g. :9000); workers connect with -worker")
	df.worker = fs.String("worker", "", "run as a worker for the coordinator at URL (host:port accepted) instead of running the experiment")
	df.state = fs.String("dist-state", "", "coordinator journal for resumable runs (default: <run dir>/"+dist.StateFileName+" when -trace is on)")
	df.leaseSize = fs.Int("dist-lease", 0, "tasks per work lease (0 = auto)")
	df.leaseTTL = fs.Duration("dist-lease-ttl", 0, "lease time-to-live before tasks are reassigned (0 = 60s default)")
	df.cache = fs.String("dist-cache", "", "worker-side artifact cache directory (default: a fresh temp dir)")
	return df
}

func (df *distFlags) isWorker() bool      { return *df.worker != "" }
func (df *distFlags) isCoordinator() bool { return *df.coordinator != "" }

// validate rejects contradictory modes before any work starts.
func (df *distFlags) validate() error {
	if df.isWorker() && df.isCoordinator() {
		return fmt.Errorf("-coordinator and -worker are mutually exclusive")
	}
	return nil
}

// signalContext is a context canceled by SIGINT/SIGTERM, so a Ctrl-C'd
// coordinator or worker exits cleanly instead of abandoning leases late.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// runWorker drives one worker process to job completion. The subcommand's
// -workers flag bounds in-lease task parallelism.
func (df *distFlags) runWorker(obsf *obsFlags, workers int) error {
	ctx, cancel := signalContext()
	defer cancel()
	w, err := jobs.NewWorker(dist.WorkerConfig{
		Coordinator: *df.worker,
		CacheDir:    *df.cache,
		Parallelism: workers,
		Logf:        obsf.infof,
	})
	if err != nil {
		return err
	}
	return w.Run(ctx)
}

// options assembles the coordinator-side jobs.Options from the flags and
// the observability context: progress lines go through -quiet, and a
// traced run defaults its resume journal into the run directory so
// `nnwc runs show` can report distributed progress.
func (df *distFlags) options(obsf *obsFlags) jobs.Options {
	opt := jobs.Options{
		Addr:      *df.coordinator,
		LeaseSize: *df.leaseSize,
		LeaseTTL:  *df.leaseTTL,
		StateFile: *df.state,
		Logf:      obsf.infof,
	}
	if dir := obsf.runDir(); dir != "" {
		opt.JobID = filepath.Base(dir)
		if opt.StateFile == "" {
			opt.StateFile = filepath.Join(dir, dist.StateFileName)
		}
		// A traced coordinated run also merges the workers' shipped events
		// into one cluster trace next to the manifest, for `runs timeline`.
		opt.ClusterTraceFile = filepath.Join(dir, dist.ClusterTraceFileName)
	}
	return opt
}

// runDir reports the active -trace run directory ("" when tracing is off).
func (o *obsFlags) runDir() string {
	if o.run != nil {
		return o.run.Dir
	}
	return ""
}
