package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"nnwc/internal/serve"
)

// cmdFleet is the operator client for a running `nnwc serve` fleet: list
// per-tenant deployment state, deploy a new artifact (live or as a canary),
// and promote or roll back a tenant — all over the server's /fleet API.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "base URL of the running nnwc serve instance")
	model := fs.String("model", "", "tenant to act on (deploy/promote/rollback)")
	path := fs.String("path", "", "model artifact path, as visible to the server (deploy)")
	canary := fs.Bool("canary", false, "stage the deploy as a shadow canary instead of swapping live")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP timeout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage:
  nnwc fleet list     [-addr URL]                              per-tenant deployment status
  nnwc fleet deploy   [-addr URL] -model T -path P [-canary]   register an artifact; swap live or stage a canary
  nnwc fleet promote  [-addr URL] -model T                     swap the tenant's canary to live
  nnwc fleet rollback [-addr URL] -model T                     drop the canary, or revert live to its predecessor`)
		fs.PrintDefaults()
	}
	// Allow the verb anywhere among the flags: `fleet list -addr x`,
	// `fleet -addr x deploy -model y`. stdlib flag parsing stops at the
	// first non-flag argument, so lift the verb out and resume parsing.
	verb := ""
	for {
		if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
			if verb != "" {
				fs.Usage()
				return fmt.Errorf("unexpected argument %q after verb %q", args[0], verb)
			}
			verb, args = args[0], args[1:]
			continue
		}
		fs.Parse(args)
		if args = fs.Args(); len(args) == 0 {
			break
		}
	}
	client := &http.Client{Timeout: *timeout}
	base := strings.TrimSuffix(*addr, "/")
	switch verb {
	case "", "list":
		return fleetList(client, base)
	case "deploy":
		if *model == "" || *path == "" {
			return fmt.Errorf("fleet deploy needs -model and -path")
		}
		return fleetPost(client, base+"/fleet/deploy", map[string]any{
			"model": *model, "path": *path, "canary": *canary,
		})
	case "promote", "rollback":
		if *model == "" {
			return fmt.Errorf("fleet %s needs -model", verb)
		}
		return fleetPost(client, base+"/fleet/"+verb, map[string]any{"model": *model})
	default:
		fs.Usage()
		return fmt.Errorf("unknown fleet verb %q", verb)
	}
}

func fleetList(client *http.Client, base string) error {
	resp, err := client.Get(base + "/fleet")
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleetHTTPError(resp)
	}
	var st serve.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("fleet: decoding response: %w", err)
	}
	if len(st.Tenants) == 0 {
		fmt.Println("fleet is empty")
		return nil
	}
	fmt.Printf("%-12s %-6s %-14s %-8s %-10s %-10s %-10s %s\n",
		"tenant", "live", "sha256", "shadow", "live-hmre", "shad-hmre", "diverge", "promote/rollback")
	for _, t := range st.Tenants {
		shadow := "-"
		if t.ShadowVer > 0 {
			shadow = fmt.Sprintf("v%d", t.ShadowVer)
		}
		fmt.Printf("%-12s v%-5d %-14.12s %-8s %-10s %-10s %-10s %d/%d\n",
			t.Tenant, t.LiveVersion, t.LiveSHA256, shadow,
			fmtRollingHMRE(t.LiveHMRE, t.LiveObs), fmtRollingHMRE(t.ShadowHMRE, t.ShadowObs),
			fmtRollingHMRE(t.Divergence, -1), t.Promotions, t.Rollbacks)
	}
	fmt.Printf("%d warm model(s), %d batch group(s)\n", st.WarmCount, st.Groups)
	return nil
}

// fmtRollingHMRE renders a rolling mean that may not have data yet; obs >= 0
// appends the window fill.
func fmtRollingHMRE(v *float64, obs int) string {
	if v == nil {
		return "-"
	}
	if obs >= 0 {
		return fmt.Sprintf("%.3f/%d", *v, obs)
	}
	return fmt.Sprintf("%.4f", *v)
}

func fleetPost(client *http.Client, url string, body map[string]any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("fleet: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleetHTTPError(resp)
	}
	var out struct {
		Status string          `json:"status"`
		Canary bool            `json:"canary"`
		Model  serve.ModelInfo `json:"model"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("fleet: decoding response: %w", err)
	}
	if out.Model.Ref != "" {
		role := ""
		if out.Canary {
			role = " (canary)"
		}
		fmt.Printf("%s: %s%s sha256 %.12s shape %s\n", out.Status, out.Model.Ref, role, out.Model.SHA256, out.Model.Shape)
	} else {
		fmt.Println(out.Status)
	}
	return nil
}

func fleetHTTPError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return fmt.Errorf("fleet: server said %d: %s", resp.StatusCode, er.Error)
	}
	return fmt.Errorf("fleet: server said %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
}
