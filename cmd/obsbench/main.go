// Command obsbench measures what the observability layer costs on the
// training hot loop and emits a machine-readable report (BENCH_obs.json).
// It times batch epochs with tracing disabled (the default path, pinned
// elsewhere to zero allocations) and with a per-epoch trace attached, and
// reports the marginal cost per epoch plus the relative overhead.
//
// Before timing it re-verifies the layer's core contract: a traced run
// must produce bit-identical training results to an untraced one, and two
// traced runs must canonicalize to byte-identical event streams.
//
// Usage:
//
//	obsbench [-out BENCH_obs.json] [-quick]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"nnwc/internal/nn"
	"nnwc/internal/obs"
	"nnwc/internal/obs/metrics"
	"nnwc/internal/rng"
	"nnwc/internal/stats"
	"nnwc/internal/train"
)

// side is one measured configuration (tracing disabled or enabled).
type side struct {
	NsPerEpoch     float64 `json:"ns_per_epoch"`
	AllocsPerEpoch float64 `json:"allocs_per_epoch"`
	BytesPerEpoch  float64 `json:"bytes_per_epoch"`
	Iterations     int     `json:"iterations"`
}

type report struct {
	GoVersion              string  `json:"go_version"`
	NumCPU                 int     `json:"num_cpu"`
	Quick                  bool    `json:"quick"`
	Samples                int     `json:"samples"`
	Epochs                 int     `json:"epochs_per_fit"`
	DeterminismOK          bool    `json:"determinism_ok"`
	Disabled               side    `json:"tracing_disabled"`
	Enabled                side    `json:"tracing_enabled"`
	OverheadPct            float64 `json:"overhead_pct"`
	MarginalAllocsPerEpoch float64 `json:"marginal_allocs_per_epoch"`
	// HistogramObserveNs is the unit cost of one mergeable-histogram
	// observation — what the httpx request middleware and the dist worker
	// pay per sample on the federation path.
	HistogramObserveNs float64 `json:"histogram_observe_ns"`
}

// fixture is one reproducible training problem: network, data, and the
// initial parameters to restore before each fit.
type fixture struct {
	net        *nn.Network
	initParams []float64
	xs, ys     [][]float64
	cfg        train.Config
}

func newFixture(samples, epochs int, trace *obs.Trace) *fixture {
	src := rng.New(17)
	net := nn.NewNetwork([]int{4, 16, 5}, nn.Logistic{Alpha: 1}, nn.Identity{})
	nn.XavierInit{}.Init(net, src)
	var xs, ys [][]float64
	for i := 0; i < samples; i++ {
		x := []float64{src.Float64(), src.Float64(), src.Float64(), src.Float64()}
		xs = append(xs, x)
		ys = append(ys, []float64{x[0], x[1] * x[2], x[3], x[0] + x[1], x[2]})
	}
	return &fixture{
		net:        net,
		initParams: append([]float64(nil), net.Params()...),
		xs:         xs,
		ys:         ys,
		cfg: train.Config{
			Optimizer:   train.NewRPROP(),
			Mode:        train.Batch,
			MaxEpochs:   epochs,
			RecordEvery: 1, // worst case: every epoch emits an event
			Trace:       trace,
		},
	}
}

// fit restores the initial weights and trains once, returning the result.
func (f *fixture) fit() (train.Result, error) {
	f.net.SetParams(f.initParams)
	tr, err := train.New(f.cfg, rng.New(2))
	if err != nil {
		return train.Result{}, err
	}
	return tr.Fit(f.net, f.xs, f.ys, nil, nil)
}

// verifyDeterminism checks that tracing is inert (identical weights and
// losses) and that the trace itself is reproducible byte-for-byte after
// canonicalization.
func verifyDeterminism(samples, epochs int) error {
	plain := newFixture(samples, epochs, nil)
	resPlain, err := plain.fit()
	if err != nil {
		return err
	}

	tracedOnce := func() (*fixture, train.Result, []byte, error) {
		var buf bytes.Buffer
		f := newFixture(samples, epochs, obs.NewTraceNoTime(obs.NewWriterSink(&buf)))
		res, err := f.fit()
		if err != nil {
			return nil, train.Result{}, nil, err
		}
		canon, err := obs.CanonicalizeJSONL(buf.Bytes())
		return f, res, canon, err
	}
	f1, res1, trace1, err := tracedOnce()
	if err != nil {
		return err
	}
	_, _, trace2, err := tracedOnce()
	if err != nil {
		return err
	}

	if !stats.ExactEqual(res1.FinalLoss, resPlain.FinalLoss) || res1.Epochs != resPlain.Epochs {
		return fmt.Errorf("tracing perturbed training: loss %v vs %v", res1.FinalLoss, resPlain.FinalLoss)
	}
	pp, tp := plain.net.Params(), f1.net.Params()
	for i := range pp {
		if !stats.ExactEqual(pp[i], tp[i]) {
			return fmt.Errorf("tracing perturbed weight %d: %v vs %v", i, pp[i], tp[i])
		}
	}
	if !bytes.Equal(trace1, trace2) {
		return fmt.Errorf("repeated traced runs produced different canonical traces")
	}
	if len(trace1) == 0 {
		return fmt.Errorf("traced run emitted no events")
	}
	return nil
}

// measure benchmarks one side and converts per-fit numbers to per-epoch.
func measure(samples, epochs int, trace *obs.Trace) side {
	f := newFixture(samples, epochs, trace)
	if _, err := f.fit(); err != nil { // warm-up outside the timer
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.fit(); err != nil {
				b.Fatal(err)
			}
		}
	})
	e := float64(epochs)
	return side{
		NsPerEpoch:     float64(r.NsPerOp()) / e,
		AllocsPerEpoch: float64(r.AllocsPerOp()) / e,
		BytesPerEpoch:  float64(r.AllocedBytesPerOp()) / e,
		Iterations:     r.N,
	}
}

// measureHistogram times one Histogram.Observe (bucket search + counter
// bump under the histogram's mutex).
func measureHistogram() float64 {
	h := metrics.NewHistogram("bench_ms", "observe cost probe", metrics.DefMillisBuckets)
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i % 50000))
		}
	})
	return float64(r.NsPerOp())
}

func main() {
	var (
		out   = flag.String("out", "BENCH_obs.json", "output JSON path")
		quick = flag.Bool("quick", false, "smaller dataset and epoch budget (CI smoke)")
	)
	flag.Parse()

	samples, epochs := 300, 400
	if *quick {
		samples, epochs = 80, 100
	}

	if err := verifyDeterminism(samples, epochs); err != nil {
		fmt.Fprintln(os.Stderr, "obsbench: determinism check failed:", err)
		os.Exit(1)
	}

	disabled := measure(samples, epochs, nil)
	enabled := measure(samples, epochs, obs.NewTrace(obs.NewWriterSink(io.Discard)))

	rep := report{
		GoVersion:              runtime.Version(),
		NumCPU:                 runtime.NumCPU(),
		Quick:                  *quick,
		Samples:                samples,
		Epochs:                 epochs,
		DeterminismOK:          true,
		Disabled:               disabled,
		Enabled:                enabled,
		OverheadPct:            (enabled.NsPerEpoch - disabled.NsPerEpoch) / disabled.NsPerEpoch * 100,
		MarginalAllocsPerEpoch: enabled.AllocsPerEpoch - disabled.AllocsPerEpoch,
		HistogramObserveNs:     measureHistogram(),
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "obsbench:", err)
		os.Exit(1)
	}
	fmt.Printf("obsbench: disabled %.0f ns/epoch, enabled %.0f ns/epoch (%+.2f%%), marginal allocs/epoch %.2f, histogram observe %.0f ns → %s\n",
		disabled.NsPerEpoch, enabled.NsPerEpoch, rep.OverheadPct, rep.MarginalAllocsPerEpoch, rep.HistogramObserveNs, *out)
}
