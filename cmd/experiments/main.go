// Command experiments regenerates the paper's tables and figures against
// the simulated three-tier workload.
//
// Usage:
//
//	experiments [-run all|table1|table2|fig2|fig4|fig5|fig6|fig7|fig8|baseline|extrapolation|recommend]
//	            [-out results] [-seed N] [-quick] [-workers N]
//	experiments -worker URL [-workers N] [-dist-cache DIR]
//
// Reports print to stdout; CSV artifacts land in the output directory.
// Independent runs (CV folds, ensemble members, sweep cells, surface rows)
// execute on a deterministic worker pool; -workers bounds its concurrency
// and the outputs are bit-identical at every setting. With -worker the
// process instead serves a distributed experiment coordinator (one
// started with `nnwc <subcommand> -coordinator ADDR`), executing whatever
// job kind it offers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"nnwc/internal/dist"
	"nnwc/internal/dist/jobs"
	"nnwc/internal/experiments"
	"nnwc/internal/obs"
	"nnwc/internal/sched"
)

func main() {
	var (
		run       = flag.String("run", "all", "experiment id, or 'all'")
		out       = flag.String("out", "results", "directory for CSV artifacts")
		seed      = flag.Uint64("seed", 2006, "master seed for data collection and training")
		quick     = flag.Bool("quick", false, "scaled-down settings (for smoke runs)")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent workers for parallel phases (results are identical at any setting)")
		worker    = flag.String("worker", "", "serve a distributed experiment coordinator at URL instead of running experiments")
		cache     = flag.String("dist-cache", "", "worker-side artifact cache directory (default: a fresh temp dir)")
		traceDir  = flag.String("trace", "", "write a run trace and manifest under this directory (e.g. runs/)")
		pprofAddr = flag.String("pprof-addr", "", "serve /debug/pprof, /debug/vars and /metrics on this address")
	)
	flag.Parse()
	sched.SetWorkers(*workers)

	if *worker != "" {
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
		// Workers profile too: this branch returns before the main pprof
		// block below, so start the debug server here as well.
		if *pprofAddr != "" {
			addr, err := obs.StartDebugServer(*pprofAddr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: starting debug server: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("experiments: debug server on http://%s\n", addr)
		}
		w, err := jobs.NewWorker(dist.WorkerConfig{
			Coordinator: *worker,
			CacheDir:    *cache,
			Parallelism: *workers,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		if err == nil {
			err = w.Run(ctx)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-14s %s\n", r.ID, r.Desc)
		}
		return
	}

	if *pprofAddr != "" {
		addr, err := obs.StartDebugServer(*pprofAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: starting debug server: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("experiments: debug server on http://%s\n", addr)
	}
	var rec *obs.Run
	if *traceDir != "" {
		var err error
		rec, err = obs.StartRun(*traceDir, "experiments", os.Args[1:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		rec.Manifest.Seed = *seed
		rec.Manifest.Workers = sched.Workers(*workers)
		fmt.Printf("experiments: tracing run %s\n", rec.Dir)
	}
	fail := func(format string, args ...any) {
		err := fmt.Errorf(format, args...)
		rec.Finish(err)
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	ctx := experiments.New(os.Stdout, *out)
	if *quick {
		ctx = experiments.NewQuick(os.Stdout, *out)
	}
	ctx.Seed = *seed
	ctx.Workers = *workers
	ctx.Trace = rec.Trace()

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fail("unknown experiment %q (use -list)", id)
			}
			runners = append(runners, r)
		}
	}

	tr := rec.Trace()
	for _, r := range runners {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Desc)
		if tr.Enabled() {
			tr.Emit("experiment_start", obs.String("id", r.ID))
		}
		if err := r.Run(ctx); err != nil {
			fail("%s failed: %w", r.ID, err)
		}
		elapsed := time.Since(start)
		if tr.Enabled() {
			tr.Emit("experiment_end", obs.String("id", r.ID), obs.Float("ms", float64(elapsed.Nanoseconds())/1e6))
		}
		fmt.Printf("--- %s done in %v ---\n\n", r.ID, elapsed.Round(time.Millisecond))
	}
	if err := rec.Finish(nil); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: finishing trace: %v\n", err)
		os.Exit(1)
	}
}
