// Command experiments regenerates the paper's tables and figures against
// the simulated three-tier workload.
//
// Usage:
//
//	experiments [-run all|table1|table2|fig2|fig4|fig5|fig6|fig7|fig8|baseline|extrapolation|recommend]
//	            [-out results] [-seed N] [-quick] [-workers N]
//
// Reports print to stdout; CSV artifacts land in the output directory.
// Independent runs (CV folds, ensemble members, sweep cells, surface rows)
// execute on a deterministic worker pool; -workers bounds its concurrency
// and the outputs are bit-identical at every setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"nnwc/internal/experiments"
	"nnwc/internal/sched"
)

func main() {
	var (
		run     = flag.String("run", "all", "experiment id, or 'all'")
		out     = flag.String("out", "results", "directory for CSV artifacts")
		seed    = flag.Uint64("seed", 2006, "master seed for data collection and training")
		quick   = flag.Bool("quick", false, "scaled-down settings (for smoke runs)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent workers for parallel phases (results are identical at any setting)")
	)
	flag.Parse()
	sched.SetWorkers(*workers)

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-14s %s\n", r.ID, r.Desc)
		}
		return
	}

	ctx := experiments.New(os.Stdout, *out)
	if *quick {
		ctx = experiments.NewQuick(os.Stdout, *out)
	}
	ctx.Seed = *seed
	ctx.Workers = *workers

	var runners []experiments.Runner
	if *run == "all" {
		runners = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			r, ok := experiments.Lookup(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", r.ID, r.Desc)
		if err := r.Run(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
