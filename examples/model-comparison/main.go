// model-comparison puts the paper's argument on one screen: linear models
// (the prior art), analytic non-linear models (polynomial, logarithmic —
// the paper's §7 future work), the MLP (the paper's contribution), and the
// logarithmic neural network (ref. [23]) all fit the same workload data,
// then are scored on interpolation and on extrapolation outside the
// training range.
//
// Run with: go run ./examples/model-comparison
package main

import (
	"fmt"
	"log"

	"nnwc/internal/core"
	"nnwc/internal/linear"
	"nnwc/internal/nn"
	"nnwc/internal/poly"
	"nnwc/internal/rng"
	"nnwc/internal/stats"
	"nnwc/internal/threetier"
	"nnwc/internal/workload"
)

type entry struct {
	name string
	fit  func(tr *workload.Dataset) (core.Predictor, error)
}

func main() {
	sys := threetier.DefaultSystemParams()
	sys.WarmupTime, sys.MeasureTime = 8, 32

	// Interpolation data: rates 440-560; extrapolation probes: 620-660.
	spec := threetier.SweepSpec{
		InjectionRates: []float64{440, 480, 520, 560},
		MfgThreads:     []int{16},
		WebThreads:     []int{12, 16, 20, 24},
		DefaultThreads: []int{4, 8, 12},
	}
	outSpec := spec
	outSpec.InjectionRates = []float64{620, 660}

	fmt.Println("collecting training and extrapolation datasets...")
	ds, err := threetier.Collect(spec, sys, 31)
	if err != nil {
		log.Fatal(err)
	}
	outDS, err := threetier.Collect(outSpec, sys, 32)
	if err != nil {
		log.Fatal(err)
	}

	mlp := core.Config{Hidden: []int{16}, Seed: 2}
	lnnCfg := mlp
	lnnCfg.HiddenActivation = nn.LogCompress{}
	entries := []entry{
		{"linear (prior art)", func(tr *workload.Dataset) (core.Predictor, error) {
			return linear.Fit(tr.Xs(), tr.Ys(), linear.Options{})
		}},
		{"polynomial deg 2", func(tr *workload.Dataset) (core.Predictor, error) {
			return poly.Fit(poly.Polynomial{Degree: 2, Interactions: true}, tr.Xs(), tr.Ys(),
				poly.Options{Lambda: 1e-4, Standardize: true})
		}},
		{"logarithmic", func(tr *workload.Dataset) (core.Predictor, error) {
			return poly.Fit(poly.Logarithmic{}, tr.Xs(), tr.Ys(), poly.Options{})
		}},
		{"MLP (this paper)", func(tr *workload.Dataset) (core.Predictor, error) {
			return core.Fit(tr, mlp)
		}},
		{"log neural net", func(tr *workload.Dataset) (core.Predictor, error) {
			return core.Fit(tr, lnnCfg)
		}},
	}

	// Shuffled 80/20 split for the interpolation score.
	shuffled := ds.Clone()
	shuffled.Shuffle(rng.New(9))
	trainSet, valSet := shuffled.Split(0.8)

	fmt.Printf("\n%-20s %14s %16s\n", "model", "interp. error", "extrap. error")
	for _, e := range entries {
		m, err := e.fit(trainSet)
		if err != nil {
			log.Fatal(err)
		}
		evIn, err := core.Evaluate(m, valSet)
		if err != nil {
			log.Fatal(err)
		}
		evOut, err := core.Evaluate(m, outDS)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %13.1f%% %15.1f%%\n", e.name,
			stats.MeanSkipNaN(evIn.HMRE)*100, stats.MeanSkipNaN(evOut.HMRE)*100)
	}
	fmt.Println(`
Reading the table like the paper does:
 - the linear model's interpolation error is the §1 motivation: it cannot
   bend around the valleys and hills, so the MLP beats it severalfold;
 - every model suffers out of range (§5.3: "neural network models cannot
   be used for extrapolation"); the logarithmic variants degrade the most
   gracefully, which is why §7 points at them as future work.`)
}
