// closed-loop contrasts the paper's open-loop driver (Poisson arrivals at
// a fixed injection rate) with a closed-loop driver (a fixed population of
// virtual users with think time, as SPECjAppServer-style harnesses use),
// and verifies the interactive response-time law X = N/(Z+R) against the
// simulator — an operational-law sanity check that holds for any
// well-measured closed system.
//
// Run with: go run ./examples/closed-loop
package main

import (
	"fmt"
	"log"

	"nnwc/internal/threetier"
)

func main() {
	sys := threetier.DefaultSystemParams()
	sys.WarmupTime, sys.MeasureTime = 10, 60

	fmt.Println("open loop: response time vs injection rate (mfg=16, web=18, default=8)")
	fmt.Printf("  %8s %12s %12s %12s\n", "rate", "purchase ms", "eff tx/s", "rejected")
	for _, rate := range []float64{400, 500, 600, 700} {
		cfg := threetier.Config{InjectionRate: rate, MfgThreads: 16, WebThreads: 18, DefaultThreads: 8}
		m, err := threetier.Run(cfg, sys, 11)
		if err != nil {
			log.Fatal(err)
		}
		var rejected int
		for c := 0; c < threetier.NumClasses; c++ {
			rejected += m.Rejected[c]
		}
		fmt.Printf("  %8.0f %12.1f %12.1f %12d\n",
			rate, m.ResponseTimes[threetier.DealerPurchase]*1000, m.EffectiveTPS, rejected)
	}

	fmt.Println("\nclosed loop: same system driven by N users with 0.5 s think time")
	fmt.Printf("  %8s %12s %12s %14s %10s\n", "users", "purchase ms", "X (tx/s)", "N/(Z+R) law", "law err")
	for _, users := range []int{100, 200, 300, 400} {
		cfg := threetier.Config{
			Mode: threetier.ClosedLoop, Users: users, ThinkTime: 0.5,
			MfgThreads: 16, WebThreads: 18, DefaultThreads: 8,
		}
		m, err := threetier.Run(cfg, sys, 12)
		if err != nil {
			log.Fatal(err)
		}
		// Completion-weighted mean response time across classes.
		var rtSum float64
		var n int
		for c := 0; c < threetier.NumClasses; c++ {
			rtSum += m.ResponseTimes[c] * float64(m.Completed[c])
			n += m.Completed[c]
		}
		meanRT := rtSum / float64(n)
		law := float64(users) / (0.5 + meanRT)
		errPct := (m.OfferedTPS - law) / law * 100
		fmt.Printf("  %8d %12.1f %12.1f %14.1f %9.1f%%\n",
			users, m.ResponseTimes[threetier.DealerPurchase]*1000, m.OfferedTPS, law, errPct)
	}

	fmt.Println(`
What to notice:
 - the open driver keeps pushing as the system saturates: response times
   climb and the admission queue starts rejecting work;
 - the closed driver self-limits: throughput tracks N/(Z+R) (the
   interactive response-time law) and saturates as users pile up on the
   bottleneck instead of being rejected;
 - the paper's model consumes open-loop samples, but the same (config →
   indicators) interface works for either driver — swap the Mode field.`)
}
