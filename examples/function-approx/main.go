// function-approx demonstrates the foundation the paper builds on (§2.2):
// multilayer perceptrons as universal function approximators. Three
// architectures — the paper's sigmoid MLP, a logarithmic neural network,
// and an RBF network — fit the analytic M/M/c mean-response-time curve
// from queueing theory, then are probed outside the training range to show
// §5.3's extrapolation behaviour on a target whose true values we can
// compute exactly.
//
// Run with: go run ./examples/function-approx
package main

import (
	"fmt"
	"log"

	"nnwc/internal/core"
	"nnwc/internal/nn"
	"nnwc/internal/nn/rbf"
	"nnwc/internal/plot"
	"nnwc/internal/preprocess"
	"nnwc/internal/queueing"
	"nnwc/internal/workload"
	"os"
)

const (
	mu      = 25.0 // per-server service rate
	servers = 8
)

// truth returns the analytic M/M/8 mean response time (ms) at arrival
// rate lambda.
func truth(lambda float64) float64 {
	w, err := queueing.MMC{Lambda: lambda, Mu: mu, C: servers}.MeanResponseTime()
	if err != nil {
		log.Fatal(err)
	}
	return w * 1000
}

func main() {
	// Training range: utilization 0.10 … 0.90. Probe range: up to 0.965,
	// where the queueing curve turns sharply upward.
	train := workload.NewDataset([]string{"lambda"}, []string{"rt_ms"})
	for l := 20.0; l <= 180; l += 4 {
		train.MustAppend(workload.Sample{X: []float64{l}, Y: []float64{truth(l)}})
	}
	fmt.Printf("training on %d points of the M/M/%d response-time curve (λ∈[20,180], μ=%g)\n",
		train.Len(), servers, mu)

	mlpCfg := core.Config{Hidden: []int{12}, Seed: 3}
	lnnCfg := mlpCfg
	lnnCfg.HiddenActivation = nn.LogCompress{}

	mlp, err := core.Fit(train, mlpCfg)
	if err != nil {
		log.Fatal(err)
	}
	lnn, err := core.Fit(train, lnnCfg)
	if err != nil {
		log.Fatal(err)
	}
	// RBF needs standardized features for sane Gaussian widths.
	xs := preprocess.NewStandardizer()
	if err := xs.Fit(train.Xs()); err != nil {
		log.Fatal(err)
	}
	rbfNet, err := rbf.Fit(preprocess.TransformAll(xs, train.Xs()), train.Ys(),
		rbf.Config{Centers: 12, WidthScale: 2, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	rbfPredict := func(l float64) float64 {
		return rbfNet.Predict(xs.Transform([]float64{l}))[0]
	}

	fmt.Printf("\n%8s %10s %10s %10s %10s %8s\n", "λ", "truth", "MLP", "LNN", "RBF", "zone")
	for _, l := range []float64{40, 100, 160, 176, 184, 190, 193} {
		zone := "train"
		if l > 180 {
			zone = "EXTRAP"
		}
		fmt.Printf("%8.0f %10.1f %10.1f %10.1f %10.1f %8s\n",
			l, truth(l), mlp.Predict([]float64{l})[0], lnn.Predict([]float64{l})[0],
			rbfPredict(l), zone)
	}

	// The in-range fit, visually: actual vs MLP prediction.
	var actual, pred []float64
	for l := 20.0; l <= 180; l += 8 {
		actual = append(actual, truth(l))
		pred = append(pred, mlp.Predict([]float64{l})[0])
	}
	fmt.Println()
	sc := plot.Scatter{
		Title:  "M/M/8 response time: actual (o) vs MLP (x) across the training range",
		Actual: actual,
		Pred:   pred,
		Height: 12,
	}
	if err := sc.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println(`
What to notice:
 - inside the training range all three families track the analytic curve
   essentially perfectly (the §2.2 universal-approximation property);
 - past λ=180 every model falls behind the exploding true curve, and the
   drop is steepest relative to the in-range accuracy for the sigmoid MLP,
   whose saturated hidden units cap its growth — §5.3's "prediction
   accuracy of MLPs drop rapidly outside the range of training data";
 - no family rescues a super-linear blowup like queueing saturation; the
   logarithmic network (ref. [23]) grows rather than saturating, which
   helps on gentler targets (see 'go run ./cmd/experiments -run
   extrapolation' for the workload-level comparison) but is still
   sub-linear here. Extrapolating a performance model past its measured
   range is a modelling error, not a tooling problem.`)
}
