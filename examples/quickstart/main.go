// Quickstart: collect samples from the three-tier workload simulator,
// train the paper's neural-network model, validate it, and predict an
// unseen configuration — the whole §3 methodology in ~60 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nnwc/internal/core"
	"nnwc/internal/rng"
	"nnwc/internal/threetier"
)

func main() {
	// 1. Collect samples: a small sweep over thread-pool sizes at two
	// injection rates. Every (config, indicators) pair is one sample.
	spec := threetier.SweepSpec{
		InjectionRates: []float64{480, 560},
		MfgThreads:     []int{8, 16},
		WebThreads:     []int{12, 16, 20, 24},
		DefaultThreads: []int{4, 8, 12},
	}
	sys := threetier.DefaultSystemParams()
	sys.WarmupTime, sys.MeasureTime = 8, 32 // keep the demo fast
	ds, err := threetier.Collect(spec, sys, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d samples (%d configuration parameters → %d performance indicators)\n",
		ds.Len(), ds.NumFeatures(), ds.NumTargets())

	// 2. Hold out a validation split, then train the MLP. Standardization
	// and loose-fit early stopping are on by default, per the paper.
	ds.Shuffle(rng.New(1))
	trainSet, valSet := ds.Split(0.8)
	model, err := core.Fit(trainSet, core.Config{Hidden: []int{12}, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained: %d epochs, stop reason %q\n",
		model.TrainResult.Epochs, model.TrainResult.Reason)

	// 3. Validate on the held-out configurations.
	ev, err := core.Evaluate(model, valSet)
	if err != nil {
		log.Fatal(err)
	}
	for j, name := range ev.TargetNames {
		fmt.Printf("  %-24s validation error %.1f%%\n", name, ev.HMRE[j]*100)
	}
	fmt.Printf("overall prediction accuracy: %.1f%%\n", ev.Accuracy()*100)

	// 4. Predict a configuration that was never simulated.
	x := []float64{520, 7, 12, 17} // (rate, default, mfg, web)
	y := model.Predict(x)
	fmt.Printf("\npredicted indicators for rate=520 default=7 mfg=12 web=17:\n")
	for j, name := range model.TargetNames {
		fmt.Printf("  %-24s %.1f\n", name, y[j])
	}
}
