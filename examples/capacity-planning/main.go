// capacity-planning uses a trained workload model for what-if analysis the
// simulator never ran: sweeping the injection rate at a fixed thread-pool
// configuration to find the highest load that still meets response-time
// SLAs — the "predict how the performance metrics will change as the input
// parameters change" use case from the paper's introduction.
//
// Run with: go run ./examples/capacity-planning
package main

import (
	"fmt"
	"log"

	"nnwc/internal/core"
	"nnwc/internal/threetier"
)

// SLA bounds per indicator (ms for the four response times).
var slaBounds = []float64{140, 80, 60, 65}

func main() {
	// Train across a range of injection rates so the rate axis is
	// interpolation, not extrapolation.
	spec := threetier.SweepSpec{
		InjectionRates: []float64{400, 460, 520, 580, 640},
		MfgThreads:     []int{16},
		WebThreads:     []int{16, 20, 24},
		DefaultThreads: []int{6, 10, 14},
	}
	sys := threetier.DefaultSystemParams()
	sys.WarmupTime, sys.MeasureTime = 10, 40
	fmt.Printf("collecting %d samples across injection rates 400-640...\n", spec.Size())
	ds, err := threetier.Collect(spec, sys, 11)
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Fit(ds, core.Config{Hidden: []int{16}, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	cfgs := []struct {
		name          string
		def, mfg, web int
	}{
		{"lean (6/16/18)", 6, 16, 18},
		{"tuned (10/16/22)", 10, 16, 22},
		{"oversized (14/16/24)", 14, 16, 24},
	}
	for _, c := range cfgs {
		fmt.Printf("\n%s — predicted capacity sweep:\n", c.name)
		fmt.Printf("  %6s %10s %10s %10s %8s\n", "rate", "mfg ms", "purch ms", "browse ms", "SLA?")
		maxOK := 0.0
		for rate := 420.0; rate <= 640; rate += 20 {
			y := model.Predict([]float64{rate, float64(c.def), float64(c.mfg), float64(c.web)})
			ok := true
			for j, b := range slaBounds {
				if y[j] > b {
					ok = false
					break
				}
			}
			mark := "miss"
			if ok {
				mark = "ok"
				maxOK = rate
			}
			fmt.Printf("  %6.0f %10.1f %10.1f %10.1f %8s\n", rate, y[0], y[1], y[3], mark)
		}
		if maxOK > 0 {
			fmt.Printf("  → model-estimated capacity: ~%.0f tx/s within SLA\n", maxOK)
			// Verify the estimate against a fresh simulation.
			m, err := threetier.Run(threetier.Config{
				InjectionRate:  maxOK,
				DefaultThreads: c.def,
				MfgThreads:     c.mfg,
				WebThreads:     c.web,
			}, sys, 23)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  → simulator at %.0f tx/s: mfg %.0fms, purchase %.0fms, browse %.0fms\n",
				maxOK, m.ResponseTimes[threetier.Manufacturing]*1000,
				m.ResponseTimes[threetier.DealerPurchase]*1000,
				m.ResponseTimes[threetier.DealerBrowse]*1000)
		} else {
			fmt.Println("  → no rate in the sweep meets the SLA")
		}
	}
}
