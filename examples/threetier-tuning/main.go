// threetier-tuning reproduces the paper's case study end to end on the
// simulated workload: collect a configuration sweep, run 5-fold
// cross-validation (Table 2), render the actual-vs-predicted fit of trial
// 1 (Figures 5/6), draw the three response-surface archetypes at the
// paper's (560, x, 16, y) slice (Figures 4/7/8), and finish with a tuning
// recommendation.
//
// Run with: go run ./examples/threetier-tuning
// (takes a couple of minutes at full fidelity; pass -quick to shrink it)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nnwc/internal/core"
	"nnwc/internal/plot"
	"nnwc/internal/recommend"
	"nnwc/internal/surface"
	"nnwc/internal/threetier"
)

func main() {
	quick := flag.Bool("quick", false, "use a smaller sweep and shorter simulations")
	flag.Parse()

	spec := threetier.DefaultSweep()
	sys := threetier.DefaultSystemParams()
	if *quick {
		sys.WarmupTime, sys.MeasureTime = 5, 20
		spec.WebThreads = []int{8, 12, 16, 20, 24, 28}
		spec.DefaultThreads = []int{2, 6, 10, 16, 22}
	}

	fmt.Printf("== collecting %d configurations ==\n", spec.Size())
	ds, err := threetier.Collect(spec, sys, 2006)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== 5-fold cross-validation (the paper's Table 2 protocol) ==")
	cfg := core.Config{Hidden: []int{16}, Seed: 1}
	cv, err := core.CrossValidate(ds, cfg, 5, 99)
	if err != nil {
		log.Fatal(err)
	}
	for i, tr := range cv.Trials {
		fmt.Printf("trial %d:", i+1)
		for j, e := range tr.Errors {
			fmt.Printf(" %s=%.1f%%", cv.TargetNames[j], e*100)
		}
		fmt.Println()
	}
	fmt.Printf("overall prediction accuracy: %.1f%%\n\n", cv.OverallAccuracy()*100)

	fmt.Println("== actual (o) vs predicted (x), validation set of trial 1 ==")
	trial := cv.Trials[0]
	valRT := trial.Val.TargetColumn(1) // dealer purchase response time
	pred := make([]float64, trial.Val.Len())
	for i, s := range trial.Val.Samples {
		pred[i] = trial.Model.Predict(s.X)[1]
	}
	sc := plot.Scatter{Title: "dealer purchase response time (ms)", Actual: valRT, Pred: pred, Height: 12}
	if err := sc.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== response surfaces at (rate=560, mfg=16) ==")
	model, err := core.Fit(ds, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, probe := range []struct {
		output int
		label  string
	}{
		{0, "manufacturing response time (Figure 4)"},
		{1, "dealer purchase response time (Figure 7)"},
		{4, "effective throughput (Figure 8)"},
	} {
		sl := surface.Slice{
			Fixed:   []float64{560, 0, 16, 0},
			XIndex:  1, // default threads
			YIndex:  3, // web threads
			XValues: surface.Linspace(2, 24, 12),
			YValues: surface.Linspace(8, 32, 13),
			Output:  probe.output,
		}
		grid, err := surface.Evaluate(model, sl, model.InputDim(), model.OutputDim())
		if err != nil {
			log.Fatal(err)
		}
		a := surface.Classify(grid)
		fmt.Printf("%-45s → %s\n   %s\n", probe.label, a.Shape, a.Advice)
	}

	fmt.Println("\n== recommended configuration (maximize throughput under response-time SLAs) ==")
	space := recommend.Space{
		Lo:      []float64{560, 2, 8, 8},
		Hi:      []float64{560, 24, 24, 32},
		Integer: []bool{false, true, true, true},
	}
	res, err := recommend.Search(model, space,
		recommend.SLAScore(4, []float64{140, 80, 60, 65}), recommend.Options{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("default=%g mfg=%g web=%g → predicted %.0f effective tx/s\n",
		res.Best.X[1], res.Best.X[2], res.Best.X[3], res.Best.Y[4])

	// Close the loop: replay the recommendation in the simulator.
	verify := threetier.Config{
		InjectionRate:  560,
		DefaultThreads: int(res.Best.X[1]),
		MfgThreads:     int(res.Best.X[2]),
		WebThreads:     int(res.Best.X[3]),
	}
	m, err := threetier.Run(verify, sys, 77)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator agrees: %.0f effective tx/s (mfg %.0fms, purchase %.0fms)\n",
		m.EffectiveTPS, m.ResponseTimes[threetier.Manufacturing]*1000,
		m.ResponseTimes[threetier.DealerPurchase]*1000)
}
