// Package nnwc holds the repository-level benchmark harness: one benchmark
// per paper table and figure (regenerating the artifact end to end on a
// scaled-down campaign), plus the ablation benches DESIGN.md calls out for
// the design choices of §3 (joint vs split networks, standardization,
// early-stopping threshold, hidden node count, optimizer).
//
// Benchmarks report quality alongside time: custom metrics use
// b.ReportMetric with units like %err, so `go test -bench . -benchmem`
// doubles as a results table.
package nnwc

import (
	"io"
	"sync"
	"testing"

	"nnwc/internal/core"
	"nnwc/internal/experiments"
	"nnwc/internal/linear"
	"nnwc/internal/nn"
	"nnwc/internal/rng"
	"nnwc/internal/stats"
	"nnwc/internal/surface"
	"nnwc/internal/threetier"
	"nnwc/internal/train"
	"nnwc/internal/workload"
)

// benchDataset is the shared scaled-down sample campaign; collected once.
var (
	benchOnce sync.Once
	benchDS   *workload.Dataset
)

func benchSys() threetier.SystemParams {
	sys := threetier.DefaultSystemParams()
	sys.WarmupTime = 3
	sys.MeasureTime = 12
	return sys
}

func dataset(b *testing.B) *workload.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		spec := threetier.SweepSpec{
			InjectionRates: []float64{480, 560},
			MfgThreads:     []int{8, 16},
			WebThreads:     []int{10, 14, 18, 22, 26},
			DefaultThreads: []int{2, 6, 10, 14},
			Replicates:     1,
		}
		ds, err := threetier.Collect(spec, benchSys(), 2006)
		if err != nil {
			panic(err)
		}
		benchDS = ds
	})
	return benchDS
}

func benchModelConfig(hidden []int, seed uint64) core.Config {
	tc := train.DefaultConfig()
	tc.MaxEpochs = 500
	return core.Config{Hidden: hidden, Train: &tc, Seed: seed}
}

// quickContext builds an experiments context writing artifacts to a bench
// temp dir and discarding the textual report.
func quickContext(b *testing.B) *experiments.Context {
	b.Helper()
	ctx := experiments.NewQuick(io.Discard, b.TempDir())
	ctx.Sys.WarmupTime = 3
	ctx.Sys.MeasureTime = 12
	return ctx
}

// --- Table and figure benches ------------------------------------------

// BenchmarkTable2CrossValidation regenerates Table 2: the full 5-fold
// cross-validation on a fresh context, reporting the paper's headline
// accuracy.
func BenchmarkTable2CrossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickContext(b)
		if err := ctx.RunTable2(); err != nil {
			b.Fatal(err)
		}
		cv, err := ctx.CrossValidation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cv.OverallAccuracy()*100, "%acc")
	}
}

// BenchmarkFig2Sigmoid regenerates the Figure 2 data series.
func BenchmarkFig2Sigmoid(b *testing.B) {
	ctx := quickContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.RunFig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5TrainingFit regenerates the Figure 5 actual-vs-predicted
// training-set series.
func BenchmarkFig5TrainingFit(b *testing.B) {
	ctx := quickContext(b)
	for i := 0; i < b.N; i++ {
		if err := ctx.RunFig5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ValidationFit regenerates the Figure 6 validation-set
// series.
func BenchmarkFig6ValidationFit(b *testing.B) {
	ctx := quickContext(b)
	for i := 0; i < b.N; i++ {
		if err := ctx.RunFig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSurfaceFigure(b *testing.B, run func(*experiments.Context) error) {
	b.Helper()
	ctx := quickContext(b)
	for i := 0; i < b.N; i++ {
		if err := run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Surface regenerates the parallel-slopes surface.
func BenchmarkFig4Surface(b *testing.B) {
	benchSurfaceFigure(b, (*experiments.Context).RunFig4)
}

// BenchmarkFig7Surface regenerates the valley surface.
func BenchmarkFig7Surface(b *testing.B) {
	benchSurfaceFigure(b, (*experiments.Context).RunFig7)
}

// BenchmarkFig8Surface regenerates the hill surface.
func BenchmarkFig8Surface(b *testing.B) {
	benchSurfaceFigure(b, (*experiments.Context).RunFig8)
}

// BenchmarkBaselineComparison regenerates the linear-vs-MLP table backing
// the paper's motivation (§1/§6).
func BenchmarkBaselineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickContext(b)
		if err := ctx.RunBaseline(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtrapolation regenerates the §5.3 extrapolation experiment.
func BenchmarkExtrapolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickContext(b)
		if err := ctx.RunExtrapolation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommendation regenerates the §5.3 configuration-recommender
// experiment.
func BenchmarkRecommendation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickContext(b)
		if err := ctx.RunRecommend(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ------------------------------------

// validationError trains cfg on a fixed split of the bench dataset and
// returns the mean validation HMRE (as a percentage).
func validationError(b *testing.B, cfg core.Config) float64 {
	b.Helper()
	ds := dataset(b).Clone()
	ds.Shuffle(rng.New(5))
	trainSet, valSet := ds.Split(0.8)
	model, err := core.Fit(trainSet, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := core.Evaluate(model, valSet)
	if err != nil {
		b.Fatal(err)
	}
	return stats.Mean(ev.HMRE) * 100
}

// BenchmarkAblationJointVsSplit compares the paper's single n→m network
// (§3.2) against m separate n→1 networks on identical data.
func BenchmarkAblationJointVsSplit(b *testing.B) {
	b.Run("joint-n-to-m", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			e = validationError(b, benchModelConfig([]int{16}, 1))
		}
		b.ReportMetric(e, "%err")
	})
	b.Run("split-n-to-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ds := dataset(b).Clone()
			ds.Shuffle(rng.New(5))
			trainSet, valSet := ds.Split(0.8)
			var errSum float64
			for j := 0; j < ds.NumTargets(); j++ {
				sub := workload.NewDataset(ds.FeatureNames, []string{ds.TargetNames[j]})
				for _, s := range trainSet.Samples {
					sub.MustAppend(workload.Sample{X: s.X, Y: []float64{s.Y[j]}})
				}
				model, err := core.Fit(sub, benchModelConfig([]int{16}, 1))
				if err != nil {
					b.Fatal(err)
				}
				var actual, pred []float64
				for _, s := range valSet.Samples {
					actual = append(actual, s.Y[j])
					pred = append(pred, model.Predict(s.X)[0])
				}
				h, err := stats.HarmonicMeanRelativeError(actual, pred)
				if err != nil {
					h = 0
				}
				errSum += h
			}
			b.ReportMetric(errSum/float64(ds.NumTargets())*100, "%err")
		}
	})
}

// BenchmarkAblationStandardization measures §3.1's claim: training on raw
// (non-standardized) inputs traps gradient descent in bad minima.
func BenchmarkAblationStandardization(b *testing.B) {
	b.Run("standardized", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			e = validationError(b, benchModelConfig([]int{16}, 1))
		}
		b.ReportMetric(e, "%err")
	})
	b.Run("raw-inputs", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			cfg := benchModelConfig([]int{16}, 1)
			f := false
			cfg.StandardizeInputs = &f
			cfg.StandardizeOutputs = core.StandardizeNever
			e = validationError(b, cfg)
		}
		b.ReportMetric(e, "%err")
	})
}

// BenchmarkAblationEarlyStopping sweeps the §3.3 termination threshold:
// loose fits generalize, tight fits overfit.
func BenchmarkAblationEarlyStopping(b *testing.B) {
	for _, tc := range []struct {
		name   string
		target float64
		epochs int
	}{
		{"loose-1e-2", 1e-2, 3000},
		{"paper-1e-4", 1e-4, 3000},
		{"tight-1e-7", 1e-7, 3000},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				cfg := benchModelConfig([]int{16}, 1)
				t2 := *cfg.Train
				t2.TargetLoss = tc.target
				t2.MaxEpochs = tc.epochs
				cfg.Train = &t2
				e = validationError(b, cfg)
			}
			b.ReportMetric(e, "%err")
		})
	}
}

// BenchmarkAblationHiddenNodes sweeps the §3.2 node count.
func BenchmarkAblationHiddenNodes(b *testing.B) {
	for _, h := range []int{2, 4, 8, 16, 32} {
		b.Run(nodeName(h), func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				e = validationError(b, benchModelConfig([]int{h}, 1))
			}
			b.ReportMetric(e, "%err")
		})
	}
}

func nodeName(h int) string {
	switch h {
	case 2:
		return "hidden-02"
	case 4:
		return "hidden-04"
	case 8:
		return "hidden-08"
	case 16:
		return "hidden-16"
	case 32:
		return "hidden-32"
	}
	return "hidden-n"
}

// BenchmarkAblationOptimizers compares the trainers on identical topology
// and budget.
func BenchmarkAblationOptimizers(b *testing.B) {
	cases := []struct {
		name string
		mk   func() (train.Optimizer, train.Mode)
	}{
		{"sgd-online", func() (train.Optimizer, train.Mode) { return &train.SGD{LR: 0.01}, train.Online }},
		{"momentum-online", func() (train.Optimizer, train.Mode) { return &train.Momentum{LR: 0.01, Mu: 0.9}, train.Online }},
		{"rprop-batch", func() (train.Optimizer, train.Mode) { return train.NewRPROP(), train.Batch }},
		{"adam-batch", func() (train.Optimizer, train.Mode) { return train.NewAdam(0.01), train.Batch }},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				opt, mode := tc.mk()
				cfg := benchModelConfig([]int{16}, 1)
				t2 := *cfg.Train
				t2.Optimizer = opt
				t2.Mode = mode
				t2.MaxEpochs = 500
				cfg.Train = &t2
				e = validationError(b, cfg)
			}
			b.ReportMetric(e, "%err")
		})
	}
}

// --- Micro benches -------------------------------------------------------

// BenchmarkSimulatorRun measures one full simulation of the paper's
// operating point.
func BenchmarkSimulatorRun(b *testing.B) {
	cfg := threetier.Config{InjectionRate: 560, MfgThreads: 16, WebThreads: 18, DefaultThreads: 8}
	sys := benchSys()
	for i := 0; i < b.N; i++ {
		if _, err := threetier.Run(cfg, sys, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelPredict measures one trained-model inference.
func BenchmarkModelPredict(b *testing.B) {
	ds := dataset(b)
	model, err := core.Fit(ds, benchModelConfig([]int{16}, 1))
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{560, 8, 16, 18}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(x)
	}
}

// BenchmarkSurfaceEvaluation measures a 12×13 surface grid evaluation (the
// figures' resolution).
func BenchmarkSurfaceEvaluation(b *testing.B) {
	ds := dataset(b)
	model, err := core.Fit(ds, benchModelConfig([]int{16}, 1))
	if err != nil {
		b.Fatal(err)
	}
	sl := surface.Slice{
		Fixed:   []float64{560, 0, 16, 0},
		XIndex:  1,
		YIndex:  3,
		XValues: surface.Linspace(2, 14, 12),
		YValues: surface.Linspace(10, 26, 13),
		Output:  4,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surface.Evaluate(model, sl, 4, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinearBaselineFit measures the prior-art model's training cost
// for contrast with the MLP's.
func BenchmarkLinearBaselineFit(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := linear.Fit(ds.Xs(), ds.Ys(), linear.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLPTraining measures one full MLP training run on the bench
// dataset (the cost of the paper's model construction step).
func BenchmarkMLPTraining(b *testing.B) {
	ds := dataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Fit(ds, benchModelConfig([]int{16}, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: the bench harness should never silently run against an empty
// dataset (a broken Collect would make every ablation meaningless).
func TestBenchDatasetSane(t *testing.T) {
	benchOnce.Do(func() {
		spec := threetier.SweepSpec{
			InjectionRates: []float64{480, 560},
			MfgThreads:     []int{8, 16},
			WebThreads:     []int{10, 14, 18, 22, 26},
			DefaultThreads: []int{2, 6, 10, 14},
			Replicates:     1,
		}
		ds, err := threetier.Collect(spec, benchSys(), 2006)
		if err != nil {
			panic(err)
		}
		benchDS = ds
	})
	if benchDS.Len() != 2*2*5*4 {
		t.Fatalf("bench dataset has %d samples", benchDS.Len())
	}
	if err := benchDS.Validate(); err != nil {
		t.Fatal(err)
	}
	var _ nn.Activation = nn.Logistic{Alpha: 1} // keep the nn import honest
}

// BenchmarkSamplingDesigns regenerates the sample-design efficiency table.
func BenchmarkSamplingDesigns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickContext(b)
		if err := ctx.RunSampling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImportance regenerates the permutation-importance experiment.
func BenchmarkImportance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickContext(b)
		if err := ctx.RunImportance(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNodeCountSelection regenerates the §3.2 topology-selection
// experiment.
func BenchmarkNodeCountSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := quickContext(b)
		if err := ctx.RunNodeCount(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEnsembleSize measures accuracy vs ensemble size: a
// variance-reduction upgrade over the paper's single-network protocol.
func BenchmarkAblationEnsembleSize(b *testing.B) {
	for _, n := range []int{1, 3, 5} {
		name := map[int]string{1: "members-1", 3: "members-3", 5: "members-5"}[n]
		b.Run(name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				ds := dataset(b).Clone()
				ds.Shuffle(rng.New(5))
				trainSet, valSet := ds.Split(0.8)
				ens, err := core.FitEnsemble(trainSet, benchModelConfig([]int{16}, 1), n)
				if err != nil {
					b.Fatal(err)
				}
				ev, err := core.Evaluate(ens, valSet)
				if err != nil {
					b.Fatal(err)
				}
				e = stats.Mean(ev.HMRE) * 100
			}
			b.ReportMetric(e, "%err")
		})
	}
}

// BenchmarkAblationParallelTraining measures the wall-clock effect of the
// goroutine-parallel batch gradient on a full training run.
func BenchmarkAblationParallelTraining(b *testing.B) {
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "workers-4"}[workers]
		b.Run(name, func(b *testing.B) {
			ds := dataset(b)
			for i := 0; i < b.N; i++ {
				cfg := benchModelConfig([]int{16}, 1)
				tc := *cfg.Train
				tc.Workers = workers
				cfg.Train = &tc
				if _, err := core.Fit(ds, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationWeightDecay compares the paper's loose-fit threshold
// against L2 weight decay as the flexibility control of §3.3.
func BenchmarkAblationWeightDecay(b *testing.B) {
	for _, tc := range []struct {
		name  string
		decay float64
	}{
		{"decay-0", 0},
		{"decay-1e-4", 1e-4},
		{"decay-1e-2", 1e-2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				cfg := benchModelConfig([]int{16}, 1)
				t2 := *cfg.Train
				t2.WeightDecay = tc.decay
				t2.TargetLoss = 0 // isolate the decay effect
				cfg.Train = &t2
				e = validationError(b, cfg)
			}
			b.ReportMetric(e, "%err")
		})
	}
}
