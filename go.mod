module nnwc

go 1.22
