GO ?= go

.PHONY: all build vet lint lint-report lint-baseline test race dist-test cluster-test bench-smoke bench bench-json bench-kernels serve-bench bench-obs ci clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (see DESIGN.md §11 and §16):
# determinism-source confinement, scheduler confinement, map-range
# ordering, hot-path allocation discipline, float-equality, and the
# concurrency/resource-lifecycle rules (ctxflow, lockhold,
# goroutine-lifecycle, pooldiscipline, errcheck-results), driven by
# lint.conf. Fails only on findings not recorded in lint-baseline.json;
# the intended steady state is an empty baseline and a clean tip.
lint:
	$(GO) run ./cmd/nnwc-lint -baseline lint-baseline.json ./...

# Machine-readable lint report (the CI artifact): the same run as `make
# lint` but as JSON, including waived findings with their //lint:waive
# justifications so suppressions stay auditable. Never fails: the report
# is for reading, `make lint` is the gate.
lint-report:
	-$(GO) run ./cmd/nnwc-lint -baseline lint-baseline.json -json ./... > lint-report.json

# Re-accept every current finding into lint-baseline.json. Use sparingly
# — when landing a new analyzer ahead of the cleanup it demands — and
# burn the baseline back down to [] as the findings are fixed.
lint-baseline:
	$(GO) run ./cmd/nnwc-lint -write-baseline lint-baseline.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Multi-process distribution tests (see DESIGN.md §14): coordinator + real
# worker processes over HTTP, SIGKILLed and replaced mid-lease, with the
# final cross-validation byte-compared to the serial seed reference.
dist-test:
	$(GO) test -race -count 1 -v -run 'TestDist' ./internal/dist/ ./internal/dist/jobs/

# Cluster observability tests (see DESIGN.md §15): merged cluster-trace
# determinism across worker counts and across SIGKILL-plus-reassignment,
# per-worker metrics federation, and the shared request middleware, all
# under the race detector.
cluster-test:
	$(GO) test -race -count 1 -v -run 'TestClusterTrace|TestDistClusterTrace|TestCoordinatorMetricsFederation|TestInstrument' ./internal/dist/ ./internal/dist/jobs/ ./internal/httpx/

# One iteration of every benchmark: catches bit-rot in the bench harnesses
# without paying for real measurement runs.
bench-smoke:
	$(GO) test -short -run '^$$' -bench . -benchtime 1x ./...

# Real measurement run for the hot training kernels (see DESIGN.md §6).
bench:
	$(GO) test -run '^$$' -bench 'Forward|Backprop|Epoch' -benchmem -benchtime 2s ./internal/nn ./internal/train

# Machine-readable benchmark of the parallel experiment plane (see
# DESIGN.md §7): CV folds, ensembles, and surface grids at workers=1 and
# workers=NumCPU, with speedups, written to BENCH_experiments.json.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_experiments.json

# Machine-readable benchmark of the compute kernels (see DESIGN.md §13):
# tiled matmul GFLOP/s by shape in both precisions, batched forward and
# backprop ns-per-sample, and the f32-vs-f64 inference speedup, written to
# BENCH_kernels.json.
bench-kernels:
	$(GO) run ./cmd/kernelbench -out BENCH_kernels.json

# Machine-readable benchmark of the prediction server (see DESIGN.md §8):
# requests/sec and p50/p99 latency, single-request vs coalesced inference,
# at 1 and many concurrent clients, at the HTTP and inference layers,
# written to BENCH_serve.json.
serve-bench:
	$(GO) run ./cmd/servebench -out BENCH_serve.json

# Machine-readable benchmark of the observability layer (see DESIGN.md §9):
# ns/epoch and allocs/epoch with tracing disabled vs enabled, plus a
# determinism pre-check, written to BENCH_obs.json.
bench-obs:
	$(GO) run ./cmd/obsbench -out BENCH_obs.json

ci: build vet lint race bench-smoke

clean:
	rm -rf results
	$(GO) clean -testcache
